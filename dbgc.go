// Package dbgc is a density-based geometry compressor for LiDAR point
// clouds, a Go implementation of the system described in
//
//	Xibo Sun and Qiong Luo.
//	"Density-Based Geometry Compression for LiDAR Point Clouds."
//	EDBT 2023.
//
// DBGC compresses a single LiDAR frame under a user-given per-point error
// bound (for example 2 cm, the measurement accuracy of typical sensors).
// Density-based clustering separates dense points — compressed with an
// octree — from sparse points, which are organized into polylines in the
// spherical coordinate space and compressed with delta and entropy coding;
// remaining outliers are coded with a 2D quadtree. At equal accuracy it
// compresses large-scale scene clouds substantially better than octree,
// kd-tree, and G-PCC style coders.
//
// # Quickstart
//
//	pc := dbgc.PointCloud{{X: 1, Y: 2, Z: 0.5}, ...} // sensor at origin
//	data, stats, err := dbgc.Compress(pc, dbgc.DefaultOptions(0.02))
//	...
//	back, err := dbgc.Decompress(data)
//
// The decompressed cloud has exactly as many points as the input;
// stats.Mapping relates decoded positions to original indices so that
// per-point error can be verified.
package dbgc

import (
	"fmt"
	"math"

	"dbgc/internal/core"
	"dbgc/internal/geom"
	"dbgc/internal/lidar"
)

// Point is a 3D point in meters, in the sensor frame (the sensor sits at
// the origin).
type Point = geom.Point

// PointCloud is a set of points (the paper's PC).
type PointCloud = geom.PointCloud

// Options configures compression. Construct with DefaultOptions and adjust
// fields as needed.
type Options = core.Options

// Stats describes one compression run: the dense/sparse/outlier split,
// per-section sizes, stage timings, and the one-to-one mapping.
type Stats = core.Stats

// OutlierMode selects the outlier compressor.
type OutlierMode = core.OutlierMode

// Outlier compressor choices (§3.6 and Table 2 of the paper).
const (
	OutlierQuadtree = core.OutlierQuadtree
	OutlierOctree   = core.OutlierOctree
	OutlierNone     = core.OutlierNone
)

// DefaultOptions returns the default configuration for per-dimension error
// bound q (meters): k = 10 as in the paper, the surface-bound minPts
// (⌈πk²/4⌉, see DESIGN.md), 6 geometric radial groups, HDL-64E sensor
// geometry, quadtree outlier coding, and approximate clustering.
func DefaultOptions(q float64) Options { return core.DefaultOptions(q) }

// SensorOptions returns DefaultOptions adjusted to a sensor's angular
// geometry, estimated from cloud metadata when the sensor is unknown.
func SensorOptions(q float64, meta lidar.Meta) Options {
	o := core.DefaultOptions(q)
	if ut := meta.UTheta(); ut > 0 {
		o.UTheta = ut
	}
	if up := meta.UPhi(); up > 0 {
		o.UPhi = up
	}
	return o
}

// Compress encodes the cloud under the given options and returns the
// compressed bit sequence together with statistics about the run.
//
// Every reconstructed point is within the error bound of its original:
// per dimension q for octree- and quadtree-coded points, and within
// Euclidean distance √3·q for spherical-coded points (Theorem 3.2 — the
// same worst case as independent per-dimension errors of q).
func Compress(pc PointCloud, opts Options) ([]byte, *Stats, error) {
	return core.Compress(pc, opts)
}

// Encoder compresses frames while recycling per-frame working memory
// across calls — the dense/sparse split, gathered sub-clouds, and the
// mapping buffer. Streaming callers compressing many frames should prefer
// it over Compress. The Stats returned by its Compress (including
// Stats.Mapping) are valid only until the next call on the same Encoder;
// an Encoder is not safe for concurrent use.
type Encoder = core.Encoder

// NewEncoder returns an Encoder that compresses with opts.
func NewEncoder(opts Options) *Encoder { return core.NewEncoder(opts) }

// CompressWith encodes the cloud with a reusable Encoder, equivalent to
// enc.Compress(pc). See Encoder for the Stats lifetime contract.
func CompressWith(enc *Encoder, pc PointCloud) ([]byte, *Stats, error) {
	return enc.Compress(pc)
}

// Decompress reconstructs a point cloud from a compressed bit sequence.
// The result holds exactly as many points as the original cloud, in decode
// order (dense, polyline, then outlier points).
func Decompress(data []byte) (PointCloud, error) {
	return core.Decompress(data)
}

// DecompressOptions configures decompression. The zero value decodes
// serially, matching Decompress.
type DecompressOptions = core.DecompressOptions

// DecodeLimits bounds the resources a decode may spend on one untrusted
// frame: decoded points, entropy symbols / tree nodes, per-section
// compressed bytes, total decoded-output memory, and an optional context
// whose deadline or cancellation aborts the decode. The zero value is
// unlimited.
type DecodeLimits = core.DecodeLimits

// ErrDecodeLimit is wrapped by errors returned when a decode exceeds its
// DecodeLimits.
var ErrDecodeLimit = core.ErrLimit

// DefaultDecodeLimits returns production limits generous enough for any
// real LiDAR frame while bounding hostile input.
func DefaultDecodeLimits() DecodeLimits { return core.DefaultDecodeLimits() }

// DecompressWith is Decompress with explicit options. With Parallel set the
// dense, sparse, and outlier sections — and the radial groups inside the
// sparse section — decode on separate goroutines; the result is
// point-identical to Decompress.
func DecompressWith(data []byte, opts DecompressOptions) (PointCloud, error) {
	return core.DecompressWith(data, opts)
}

// SectionID names one of a frame's three sections (dense, sparse,
// outlier) in container order.
type SectionID = core.SectionID

// Section identifiers, in container order.
const (
	SectionDense   = core.SectionDense
	SectionSparse  = core.SectionSparse
	SectionOutlier = core.SectionOutlier
)

// SectionReport describes the decode outcome of one frame section, as
// returned by DecompressPartial.
type SectionReport = core.SectionReport

// DecompressPartial decodes every intact section of a frame and skips
// damaged ones, returning the partial cloud plus one report per section.
// Damage is detected by the per-section CRC32s of container version 2 and
// by decode failure on both versions. The error is non-nil only when the
// frame envelope itself cannot be parsed.
func DecompressPartial(data []byte, opts DecompressOptions) (PointCloud, []SectionReport, error) {
	return core.DecompressPartial(data, opts)
}

// AABB is an axis-aligned query box.
type AABB = geom.AABB

// DecompressRegion reconstructs only the points inside the box, pruning
// compressed sections that cannot contribute: octree subtrees outside the
// region are skipped during replay and radial point groups whose shell
// misses the box are not entropy-decoded at all. Useful when frames are
// stored compressed and queried spatially.
func DecompressRegion(data []byte, region AABB) (PointCloud, error) {
	return core.DecompressRegion(data, region)
}

// VerifyErrorBound checks that dec is a faithful reconstruction of orig
// under mapping (from Stats.Mapping): same size, mapping is a permutation,
// and every point pair within Euclidean distance √3·q. It returns the
// maximum Euclidean error observed.
func VerifyErrorBound(orig, dec PointCloud, mapping []int32, q float64) (maxErr float64, err error) {
	if len(orig) != len(dec) {
		return 0, fmt.Errorf("dbgc: size mismatch: %d original vs %d decompressed", len(orig), len(dec))
	}
	if len(mapping) != len(orig) {
		return 0, fmt.Errorf("dbgc: mapping has %d entries, want %d", len(mapping), len(orig))
	}
	seen := make([]bool, len(orig))
	bound := math.Sqrt(3) * q * (1 + 1e-9)
	for j, oi := range mapping {
		if oi < 0 || int(oi) >= len(orig) || seen[oi] {
			return 0, fmt.Errorf("dbgc: mapping is not a permutation at position %d", j)
		}
		seen[oi] = true
		d := orig[oi].Dist(dec[j])
		if d > maxErr {
			maxErr = d
		}
		if d > bound {
			return maxErr, fmt.Errorf("dbgc: point %d error %v exceeds bound %v", oi, d, bound)
		}
	}
	return maxErr, nil
}
