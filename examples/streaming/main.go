// Streaming: the online monitoring scenario of §3.1/§4.4 — a client
// captures frames at sensor rate, compresses them, and streams them over
// TCP to a server that decompresses and stores them. The example runs both
// halves in one process over loopback and reports the bandwidth the
// compressed stream needs against the paper's 4G reference uplink.
package main

import (
	"fmt"
	"log"
	"net"
	"os"
	"path/filepath"
	"time"

	"dbgc"
	"dbgc/internal/lidar"
	"dbgc/internal/netproto"
	"dbgc/internal/store"
)

const (
	frames   = 5
	q        = 0.02
	fourGMbs = 8.2 // average 4G uplink, Mbps (paper §4.4)
)

func main() {
	dir, err := os.MkdirTemp("", "dbgc-streaming")
	if err != nil {
		log.Fatal(err)
	}
	defer os.RemoveAll(dir)

	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		log.Fatal(err)
	}
	done := make(chan error, 1)
	go func() { done <- server(ln, filepath.Join(dir, "frames.db")) }()

	if err := client(ln.Addr().String()); err != nil {
		log.Fatal(err)
	}
	if err := <-done; err != nil {
		log.Fatal(err)
	}
}

func client(addr string) error {
	conn, err := net.Dial("tcp", addr)
	if err != nil {
		return err
	}
	defer conn.Close()

	scene, err := lidar.NewScene(lidar.City, 7)
	if err != nil {
		return err
	}
	sensor := lidar.HDL64E()
	opts := dbgc.SensorOptions(q, sensor.Meta())

	var rawBits, compBits float64
	for seq := 0; seq < frames; seq++ {
		pc := sensor.Simulate(scene, int64(seq+1))
		t0 := time.Now()
		data, stats, err := dbgc.Compress(pc, opts)
		if err != nil {
			return err
		}
		compressTime := time.Since(t0)
		if err := netproto.Write(conn, netproto.Message{
			Kind: netproto.KindCompressed, Seq: uint64(seq), Payload: data,
		}); err != nil {
			return err
		}
		rawBits += float64(pc.RawSize() * 8)
		compBits += float64(len(data) * 8)
		fmt.Printf("[client] frame %d: %d pts, ratio %.1f, compressed in %v\n",
			seq, len(pc), stats.CompressionRatio(), compressTime.Round(time.Millisecond))
	}
	if err := netproto.Write(conn, netproto.Message{Kind: netproto.KindBye}); err != nil {
		return err
	}
	// Bandwidth accounting at the sensor's native 10 fps (§4.4).
	fmt.Printf("\n[client] raw stream would need %.1f Mbps at 10 fps\n", rawBits/frames*10/1e6)
	needed := compBits / frames * 10 / 1e6
	fmt.Printf("[client] compressed stream needs %.2f Mbps — %s the %.1f Mbps 4G uplink\n",
		needed, fits(needed), fourGMbs)
	return nil
}

func fits(mbps float64) string {
	if mbps <= fourGMbs {
		return "fits"
	}
	return "exceeds"
}

func server(ln net.Listener, storePath string) error {
	defer ln.Close()
	st, err := store.Open(storePath)
	if err != nil {
		return err
	}
	defer st.Close()

	conn, err := ln.Accept()
	if err != nil {
		return err
	}
	defer conn.Close()
	for {
		msg, err := netproto.Read(conn)
		if err != nil {
			return err
		}
		if msg.Kind == netproto.KindBye {
			fmt.Printf("[server] stored %d frames\n", st.Len())
			return nil
		}
		t0 := time.Now()
		pc, err := dbgc.Decompress(msg.Payload)
		if err != nil {
			return fmt.Errorf("frame %d: %w", msg.Seq, err)
		}
		if err := st.Put(msg.Seq, store.KindCompressed, msg.Payload); err != nil {
			return err
		}
		fmt.Printf("[server] frame %d: %d bytes -> %d points in %v, stored\n",
			msg.Seq, len(msg.Payload), len(pc), time.Since(t0).Round(time.Millisecond))
	}
}
