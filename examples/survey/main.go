// Survey: the remote-survey scenario from the paper's introduction. A
// tripod-mounted sensor captures static scenes that must be archived with
// survey-grade accuracy; frames are compressed under a tight error bound,
// verified, and written to a frame store, and the storage savings are
// reported per scene.
package main

import (
	"fmt"
	"log"
	"os"
	"path/filepath"

	"dbgc"
	"dbgc/internal/lidar"
	"dbgc/internal/store"
)

func main() {
	dir, err := os.MkdirTemp("", "dbgc-survey")
	if err != nil {
		log.Fatal(err)
	}
	defer os.RemoveAll(dir)
	st, err := store.Open(filepath.Join(dir, "survey.db"))
	if err != nil {
		log.Fatal(err)
	}
	defer st.Close()

	// Survey-grade bound: 5 mm — well below the paper's 2 cm running
	// setting, for measurement applications.
	const q = 0.005
	sensor := lidar.HDL64E()
	opts := dbgc.SensorOptions(q, sensor.Meta())

	sites := []lidar.SceneKind{lidar.Campus, lidar.Residential, lidar.Road}
	var rawTotal, compressedTotal int
	for i, site := range sites {
		scene, err := lidar.NewScene(site, int64(100+i))
		if err != nil {
			log.Fatal(err)
		}
		cloud := sensor.Simulate(scene, int64(100+i))

		data, stats, err := dbgc.Compress(cloud, opts)
		if err != nil {
			log.Fatalf("site %s: %v", site, err)
		}

		// A survey pipeline verifies before discarding the original.
		back, err := dbgc.Decompress(data)
		if err != nil {
			log.Fatalf("site %s: decompress: %v", site, err)
		}
		maxErr, err := dbgc.VerifyErrorBound(cloud, back, stats.Mapping, q)
		if err != nil {
			log.Fatalf("site %s: verification failed: %v", site, err)
		}

		if err := st.Put(uint64(i), store.KindCompressed, data); err != nil {
			log.Fatal(err)
		}
		rawTotal += cloud.RawSize()
		compressedTotal += len(data)
		fmt.Printf("site %-18s: %6d points, %8d -> %7d bytes (%.1fx), max error %.2f mm\n",
			site, len(cloud), cloud.RawSize(), len(data), stats.CompressionRatio(), maxErr*1000)
	}
	fmt.Printf("\narchived %d sites: %.2f MB raw -> %.2f MB stored (%.1fx), error bound %.0f mm per dimension\n",
		st.Len(), float64(rawTotal)/1e6, float64(compressedTotal)/1e6,
		float64(rawTotal)/float64(compressedTotal), q*1000)

	// Restore one site from the archive to show the read path.
	blob, kind, err := st.Get(1)
	if err != nil || kind != store.KindCompressed {
		log.Fatalf("reading archive: %v (kind %d)", err, kind)
	}
	restored, err := dbgc.Decompress(blob)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("restored site 1 from archive: %d points\n", len(restored))
}
