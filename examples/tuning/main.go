// Tuning: sweep DBGC's parameters on one scene to show how the error
// bound, clustering threshold, and group count trade compression ratio
// against accuracy and speed — the knobs §3.2 and §3.5 of the paper
// discuss.
package main

import (
	"fmt"
	"log"
	"time"

	"dbgc"
	"dbgc/internal/lidar"
)

func main() {
	scene, err := lidar.NewScene(lidar.Campus, 3)
	if err != nil {
		log.Fatal(err)
	}
	sensor := lidar.HDL64E()
	cloud := sensor.Simulate(scene, 3)
	fmt.Printf("campus frame: %d points\n\n", len(cloud))

	fmt.Println("— error bound sweep (the paper's Figure 9 x-axis) —")
	fmt.Printf("%10s %10s %12s %12s\n", "q (cm)", "ratio", "max err (mm)", "compress")
	for _, q := range []float64{0.0006, 0.0025, 0.01, 0.02} {
		opts := dbgc.SensorOptions(q, sensor.Meta())
		t0 := time.Now()
		data, stats, err := dbgc.Compress(cloud, opts)
		if err != nil {
			log.Fatal(err)
		}
		el := time.Since(t0)
		back, err := dbgc.Decompress(data)
		if err != nil {
			log.Fatal(err)
		}
		maxErr, err := dbgc.VerifyErrorBound(cloud, back, stats.Mapping, q)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%10.2f %10.2f %12.2f %12s\n", q*100, stats.CompressionRatio(), maxErr*1000, el.Round(time.Millisecond))
	}

	fmt.Println("\n— clustering threshold sweep (minPts; §3.2) —")
	fmt.Printf("%10s %10s %10s\n", "minPts", "dense %", "ratio")
	for _, minPts := range []int{20, 79, 200, 524} {
		opts := dbgc.SensorOptions(0.02, sensor.Meta())
		opts.MinPts = minPts
		_, stats, err := dbgc.Compress(cloud, opts)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%10d %9.1f%% %10.2f\n", minPts,
			100*float64(stats.NumDense)/float64(stats.NumPoints), stats.CompressionRatio())
	}

	fmt.Println("\n— group count sweep (§3.5 point grouping) —")
	fmt.Printf("%10s %10s\n", "groups", "ratio")
	for _, g := range []int{1, 2, 3, 5, 8} {
		opts := dbgc.SensorOptions(0.02, sensor.Meta())
		opts.Groups = g
		_, stats, err := dbgc.Compress(cloud, opts)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%10d %10.2f\n", g, stats.CompressionRatio())
	}
}
