// Quickstart: compress one simulated LiDAR frame with DBGC, decompress it,
// and verify the error bound — the smallest end-to-end use of the library.
package main

import (
	"fmt"
	"log"

	"dbgc"
	"dbgc/internal/lidar"
)

func main() {
	// Capture a frame. Any point cloud in the sensor frame works; here
	// the built-in simulator provides a city scene.
	scene, err := lidar.NewScene(lidar.City, 42)
	if err != nil {
		log.Fatal(err)
	}
	sensor := lidar.HDL64E()
	cloud := sensor.Simulate(scene, 42)
	fmt.Printf("captured %d points (%.1f MB raw)\n", len(cloud), float64(cloud.RawSize())/1e6)

	// Compress under a 2 cm error bound — the measurement accuracy of
	// the sensor, so compression loses nothing the sensor could see.
	opts := dbgc.SensorOptions(0.02, sensor.Meta())
	data, stats, err := dbgc.Compress(cloud, opts)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("compressed to %d bytes: ratio %.1fx\n", len(data), stats.CompressionRatio())
	fmt.Printf("  dense points (octree):     %d\n", stats.NumDense)
	fmt.Printf("  sparse points (polylines): %d in %d polylines\n", stats.NumSparse, stats.NumLines)
	fmt.Printf("  outliers (quadtree):       %d\n", stats.NumOutliers)

	// Decompress and verify: same point count, every point within the
	// bound.
	back, err := dbgc.Decompress(data)
	if err != nil {
		log.Fatal(err)
	}
	maxErr, err := dbgc.VerifyErrorBound(cloud, back, stats.Mapping, opts.Q)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("round trip ok: %d points, max error %.4f m (bound %.4f m)\n",
		len(back), maxErr, opts.Q*1.7320508)
}
