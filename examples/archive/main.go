// Archive: record a multi-frame capture of a static scene into a stream
// container, comparing plain per-frame compression against temporal
// (predicted-octree P-frame) mode — the stream composition the paper's
// introduction anticipates for single-frame compression.
package main

import (
	"bytes"
	"errors"
	"fmt"
	"io"
	"log"

	"dbgc"
	"dbgc/internal/lidar"
	"dbgc/internal/stream"
)

const (
	frames = 6
	q      = 0.02
)

func main() {
	// A static tripod capture: the same scene scanned repeatedly; only
	// sensor noise differs between frames.
	scene, err := lidar.NewScene(lidar.Campus, 21)
	if err != nil {
		log.Fatal(err)
	}
	sensor := lidar.HDL64E()
	capture := make([]dbgc.PointCloud, frames)
	intensity := make([][]float32, frames)
	raw := 0
	for i := range capture {
		capture[i] = sensor.Simulate(scene, int64(i+1))
		raw += capture[i].RawSize()
		// Synthetic reflectivity: smooth over the scan.
		intensity[i] = make([]float32, len(capture[i]))
		for j := range intensity[i] {
			intensity[i][j] = float32(j%1000) / 1000
		}
	}
	fmt.Printf("captured %d frames, %.1f MB raw\n\n", frames, float64(raw)/1e6)

	plain, err := record(capture, intensity, 0)
	if err != nil {
		log.Fatal(err)
	}
	temporal, err := record(capture, intensity, frames) // one I-frame, rest P
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nper-frame (I only):      %8d bytes (%.1fx vs raw)\n", plain, float64(raw)/float64(plain))
	fmt.Printf("temporal (I + P-frames): %8d bytes (%.1fx vs raw, %.2fx vs per-frame)\n",
		temporal, float64(raw)/float64(temporal), float64(plain)/float64(temporal))
}

// record writes the capture to an in-memory container and verifies it
// reads back, returning the container size.
func record(capture []dbgc.PointCloud, intensity [][]float32, temporalInterval int) (int, error) {
	var buf bytes.Buffer
	w, err := stream.NewWriter(&buf, dbgc.DefaultOptions(q), 10)
	if err != nil {
		return 0, err
	}
	if temporalInterval >= 2 {
		if err := w.EnableTemporal(temporalInterval); err != nil {
			return 0, err
		}
	}
	for i, pc := range capture {
		fs, err := w.WriteFrame(pc, intensity[i])
		if err != nil {
			return 0, err
		}
		kind := "I"
		if fs.Predicted {
			kind = "P"
		}
		fmt.Printf("  frame %d [%s]: %7d geometry + %6d intensity bytes\n",
			fs.Seq, kind, fs.GeometryBytes, fs.IntensityBytes)
	}
	if err := w.Close(); err != nil {
		return 0, err
	}

	// Verify read-back.
	r, err := stream.NewReader(bytes.NewReader(buf.Bytes()))
	if err != nil {
		return 0, err
	}
	for i := 0; ; i++ {
		fr, err := r.ReadFrame()
		if errors.Is(err, io.EOF) {
			if i != len(capture) {
				return 0, fmt.Errorf("read %d frames, wrote %d", i, len(capture))
			}
			break
		}
		if err != nil {
			return 0, err
		}
		if len(fr.Cloud) != len(capture[i]) {
			return 0, fmt.Errorf("frame %d: %d points, want %d", i, len(fr.Cloud), len(capture[i]))
		}
	}
	return buf.Len(), nil
}
