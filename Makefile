GO ?= go

.PHONY: check build vet test race fuzz bench-json

# check is the CI gate: vet + full test suite, then the data-race pass
# (which includes the reliable-transport fault-injection tests).
check: build vet test race

build:
	$(GO) build ./...

vet:
	$(GO) vet ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race ./...

# Machine-readable performance numbers: parallel decode speedup, per-decode
# allocation counts, and frame-pipeline FPS for this machine.
bench-json:
	$(GO) run ./cmd/dbgc-bench -exp perf -json BENCH_2.json

# Short fuzz sweeps over the wire decoder and the sparse codec.
fuzz:
	$(GO) test -fuzz=FuzzRead -fuzztime=15s ./internal/netproto
	$(GO) test -fuzz=FuzzDecode -fuzztime=15s ./internal/sparse
