GO ?= go

.PHONY: check build vet test race fuzz

# check is the CI gate: vet + full test suite, then the data-race pass
# (which includes the reliable-transport fault-injection tests).
check: build vet test race

build:
	$(GO) build ./...

vet:
	$(GO) vet ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race ./...

# Short fuzz sweeps over the wire decoder and the sparse codec.
fuzz:
	$(GO) test -fuzz=FuzzRead -fuzztime=15s ./internal/netproto
	$(GO) test -fuzz=FuzzDecode -fuzztime=15s ./internal/sparse
