GO ?= go

.PHONY: check build vet test race fuzz bench-json bench-sweep bench-pack \
	bench-ctx soak failover-soak vuln

# check is the CI gate: vet + full test suite (which includes the
# city-frame compression-ratio smoke test, TestRatioSmoke), then the
# data-race pass (which includes the reliable-transport fault-injection
# tests), then a known-vulnerability scan when the scanner is installed.
check: build vet test race vuln

build:
	$(GO) build ./...

vet:
	$(GO) vet ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race ./...

# Machine-readable performance numbers: serial/parallel compress and decode
# timings, steady-state Encoder allocation counts, and frame-pipeline FPS
# for this machine.
bench-json:
	$(GO) run ./cmd/dbgc-bench -exp perf -json BENCH_5.json

# Multi-core scaling sweep: the sharded entropy codec packed and unpacked
# at GOMAXPROCS 1/2/4/8, with per-stage timings, shard ratio drift vs. the
# legacy container, and the shards=1 byte-identity check.
bench-sweep:
	$(GO) run ./cmd/dbgc-bench -exp sweep -shards 8 -gomaxprocs 1,2,4,8 -json BENCH_7.json

# Block bitpacking ablation: per-stream bytes and pack/unpack timings of
# the blockpack codec against the legacy entropy coders, plus the
# v2/v3/v4 container dialect matrix with the size-guard check.
# PACK_ITERS=1 is the CI smoke scale; raise it for stable timings.
PACK_ITERS ?= 15
bench-pack:
	$(GO) run ./cmd/dbgc-bench -exp pack -frames $(PACK_ITERS) -json BENCH_8.json

# Context-modeling ablation: the occupancy feature sweep, the sparse-section
# context gain, and the v5 container dialect matrix with the ratio/guard/
# byte-identity acceptance checks. CTX_ITERS=1 is the CI smoke scale.
CTX_ITERS ?= 10
bench-ctx:
	$(GO) run ./cmd/dbgc-bench -exp ctx -frames $(CTX_ITERS) -json BENCH_10.json

# Chaos soak: concurrent tenants through fault-injected links and
# crash-prone disks with induced crash-restarts, under the race detector.
# Fails if any acked frame is missing or corrupt after the final restart.
# FAULTNET_SEED=n replays a specific fault schedule.
SOAK_FLAGS ?= -tenants 4 -clients 2 -frames 400 -crashes 3 \
	-shed-high 48 -shed-low 12 -out BENCH_load.json
soak:
	$(GO) run -race ./cmd/dbgc-loadgen $(SOAK_FLAGS)

# Replication failover soak: sync-replicated primary→follower pair under
# link chaos; severs the replication link (healthz must degrade, then
# recover), kills the primary mid-stream, promotes the follower, and
# cold-verifies every sync-acked frame in the follower's store.
FAILOVER_FLAGS ?= -failover -tenants 4 -clients 2 -frames 100 \
	-out BENCH_load.json
failover-soak:
	$(GO) run -race ./cmd/dbgc-loadgen $(FAILOVER_FLAGS)

# Known-vulnerability scan. The scanner is not vendored: the target is a
# no-op (with a note) when govulncheck is absent, so offline checkouts
# still pass `make check`; CI installs it explicitly.
vuln:
	@if command -v govulncheck >/dev/null 2>&1; then \
		govulncheck ./...; \
	else \
		echo "vuln: govulncheck not installed, skipping (go install golang.org/x/vuln/cmd/govulncheck@latest)"; \
	fi

# Short fuzz sweeps over the wire decoder and every geometry decoder, each
# running under DecodeLimits so a decompression bomb fails the target.
FUZZTIME ?= 15s
fuzz:
	$(GO) test -fuzz=FuzzRead -fuzztime=$(FUZZTIME) ./internal/netproto
	$(GO) test -fuzz=FuzzDecode -fuzztime=$(FUZZTIME) ./internal/sparse
	$(GO) test -fuzz=FuzzDecode -fuzztime=$(FUZZTIME) ./internal/kdtree
	$(GO) test -fuzz=FuzzDecode -fuzztime=$(FUZZTIME) ./internal/gpcc
	$(GO) test -fuzz=FuzzDecode -fuzztime=$(FUZZTIME) ./internal/quadtree
	$(GO) test -fuzz=FuzzBlockPack -fuzztime=$(FUZZTIME) ./internal/blockpack
	$(GO) test -fuzz=FuzzContextOctree -fuzztime=$(FUZZTIME) ./internal/octree
	$(GO) test -fuzz=FuzzDecompress -fuzztime=$(FUZZTIME) ./internal/arith
	$(GO) test -fuzz=FuzzShardedStream -fuzztime=$(FUZZTIME) ./internal/arith
	$(GO) test -fuzz=FuzzDecompress -fuzztime=$(FUZZTIME) ./internal/core
