GO ?= go

.PHONY: check build vet test race fuzz bench-json

# check is the CI gate: vet + full test suite, then the data-race pass
# (which includes the reliable-transport fault-injection tests).
check: build vet test race

build:
	$(GO) build ./...

vet:
	$(GO) vet ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race ./...

# Machine-readable performance numbers: serial/parallel compress and decode
# timings, steady-state Encoder allocation counts, and frame-pipeline FPS
# for this machine.
bench-json:
	$(GO) run ./cmd/dbgc-bench -exp perf -json BENCH_5.json

# Short fuzz sweeps over the wire decoder and every geometry decoder, each
# running under DecodeLimits so a decompression bomb fails the target.
FUZZTIME ?= 15s
fuzz:
	$(GO) test -fuzz=FuzzRead -fuzztime=$(FUZZTIME) ./internal/netproto
	$(GO) test -fuzz=FuzzDecode -fuzztime=$(FUZZTIME) ./internal/sparse
	$(GO) test -fuzz=FuzzDecode -fuzztime=$(FUZZTIME) ./internal/kdtree
	$(GO) test -fuzz=FuzzDecode -fuzztime=$(FUZZTIME) ./internal/gpcc
	$(GO) test -fuzz=FuzzDecode -fuzztime=$(FUZZTIME) ./internal/quadtree
	$(GO) test -fuzz=FuzzDecompress -fuzztime=$(FUZZTIME) ./internal/arith
	$(GO) test -fuzz=FuzzDecompress -fuzztime=$(FUZZTIME) ./internal/core
