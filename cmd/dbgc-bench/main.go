// Command dbgc-bench regenerates the tables and figures of the paper's
// evaluation (§4) on simulated LiDAR data. Each experiment prints the same
// rows or series the paper reports.
//
// Usage:
//
//	dbgc-bench -exp all            # every experiment
//	dbgc-bench -exp fig9 -frames 3 # one experiment, 3 frames per config
//
// Experiments: fig3, fig9, fig10, fig11, table2, fig12, fig13, cluster,
// throughput, memory, temporal, perf, sweep, pack, ctx, all.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"runtime/pprof"
	"strconv"
	"strings"

	"dbgc/internal/benchkit"
	"dbgc/internal/lidar"
)

func main() {
	exp := flag.String("exp", "all", "experiment to run: fig3, fig9, fig10, fig11, table2, fig12, fig13, cluster, throughput, memory, temporal, perf, sweep, pack, ctx, all")
	frames := flag.Int("frames", 2, "frames per configuration (the paper uses 1000)")
	quick := flag.Bool("quick", false, "restrict sweeps to fewer error bounds and scenes")
	csvDir := flag.String("csv", "", "also write raw rows as CSV files into this directory")
	jsonPath := flag.String("json", "", "write the perf/sweep experiment result as JSON to this file")
	cpuProfile := flag.String("cpuprofile", "", "write a CPU profile of the selected experiments to this file")
	shards := flag.Int("shards", 8, "entropy shard count for the sweep experiment")
	procs := flag.String("gomaxprocs", "1,2,4,8", "comma-separated GOMAXPROCS values for the sweep experiment")
	flag.Parse()
	jsonOut = *jsonPath
	sweepShards = *shards
	var err error
	if sweepProcs, err = parseInts(*procs); err != nil {
		fmt.Fprintf(os.Stderr, "-gomaxprocs: %v\n", err)
		os.Exit(2)
	}
	if *cpuProfile != "" {
		f, err := os.Create(*cpuProfile)
		if err != nil {
			fmt.Fprintf(os.Stderr, "cpuprofile: %v\n", err)
			os.Exit(1)
		}
		defer f.Close()
		if err := pprof.StartCPUProfile(f); err != nil {
			fmt.Fprintf(os.Stderr, "cpuprofile: %v\n", err)
			os.Exit(1)
		}
		defer pprof.StopCPUProfile()
	}
	if *csvDir != "" {
		if err := os.MkdirAll(*csvDir, 0o755); err != nil {
			fmt.Fprintf(os.Stderr, "csv dir: %v\n", err)
			os.Exit(1)
		}
		csvOut = *csvDir
	}

	runners := map[string]func(int, bool) error{
		"fig3":       runFig3,
		"fig9":       runFig9,
		"fig10":      runFig10,
		"fig11":      runFig11,
		"table2":     runTable2,
		"fig12":      runFig12,
		"fig13":      runFig13,
		"cluster":    runCluster,
		"throughput": runThroughput,
		"memory":     runMemory,
		"temporal":   runTemporal,
		"perf":       runPerf,
		"sweep":      runSweep,
		"pack":       runPack,
		"ctx":        runCtx,
	}
	order := []string{"fig3", "fig9", "fig10", "fig11", "table2", "fig12", "fig13", "cluster", "throughput", "memory", "temporal", "perf", "sweep", "pack", "ctx"}

	var selected []string
	if *exp == "all" {
		selected = order
	} else {
		for _, name := range strings.Split(*exp, ",") {
			if _, ok := runners[name]; !ok {
				fmt.Fprintf(os.Stderr, "unknown experiment %q\n", name)
				os.Exit(2)
			}
			selected = append(selected, name)
		}
	}
	for _, name := range selected {
		if err := runners[name](*frames, *quick); err != nil {
			fmt.Fprintf(os.Stderr, "%s: %v\n", name, err)
			pprof.StopCPUProfile() // os.Exit skips defers; flush the profile
			os.Exit(1)
		}
	}
}

func header(title string) {
	fmt.Printf("\n=== %s ===\n", title)
}

func qs(quick bool) []float64 {
	if quick {
		return []float64{0.0025, 0.02}
	}
	return benchkit.ErrorBounds
}

func scenes(quick bool) []lidar.SceneKind {
	if quick {
		return []lidar.SceneKind{lidar.Campus, lidar.City}
	}
	return lidar.AllScenes
}

func runFig3(frames int, quick bool) error {
	header("Figure 3: octree compression ratio and density vs. subset radius (city, q=2cm)")
	radii := []float64{5, 10, 15, 20, 30, 40, 60, 80, 120}
	rows, err := benchkit.Fig3(benchkit.DefaultQ, radii)
	if err != nil {
		return err
	}
	fmt.Printf("%8s %10s %10s %14s\n", "radius", "points", "ratio", "density(/m3)")
	var csvRows [][]string
	for _, r := range rows {
		fmt.Printf("%7.0fm %10d %10.2f %14.2f\n", r.Radius, r.Points, r.Ratio, r.Density)
		csvRows = append(csvRows, []string{f64(r.Radius), fmt.Sprint(r.Points), f64(r.Ratio), f64(r.Density)})
	}
	return writeCSV("fig3", []string{"radius_m", "points", "ratio", "density_per_m3"}, csvRows)
}

func runFig9(frames int, quick bool) error {
	header("Figure 9: compression ratio vs. error bound, all codecs, all scenes")
	rows, err := benchkit.Fig9(scenes(quick), qs(quick), frames)
	if err != nil {
		return err
	}
	var csvRows [][]string
	for _, r := range rows {
		csvRows = append(csvRows, []string{string(r.Scene), r.Codec, f64(r.Q), f64(r.Ratio), f64(r.Mbps)})
	}
	if err := writeCSV("fig9", []string{"scene", "codec", "q_m", "ratio", "mbps_at_10fps"}, csvRows); err != nil {
		return err
	}
	// Group output per scene, codecs as columns of ratios per q.
	byScene := map[lidar.SceneKind][]benchkit.Fig9Row{}
	var order []lidar.SceneKind
	for _, r := range rows {
		if _, ok := byScene[r.Scene]; !ok {
			order = append(order, r.Scene)
		}
		byScene[r.Scene] = append(byScene[r.Scene], r)
	}
	for _, scene := range order {
		fmt.Printf("\n-- %s --\n", scene)
		fmt.Printf("%10s", "q(cm)")
		printed := map[string]bool{}
		var codecs []string
		for _, r := range byScene[scene] {
			if !printed[r.Codec] {
				printed[r.Codec] = true
				codecs = append(codecs, r.Codec)
				fmt.Printf(" %10s", r.Codec)
			}
		}
		fmt.Println()
		for _, q := range qs(quick) {
			fmt.Printf("%10.3f", q*100)
			for _, c := range codecs {
				for _, r := range byScene[scene] {
					if r.Codec == c && r.Q == q {
						fmt.Printf(" %10.2f", r.Ratio)
					}
				}
			}
			fmt.Println()
		}
	}
	return nil
}

func runFig10(frames int, quick bool) error {
	header("Figure 10: ratio vs. forced octree percentage (city, q=2cm)")
	fractions := []float64{0, 0.1, 0.2, 0.3, 0.4, 0.5, 0.6, 0.7, 0.8, 0.9, 1}
	rows, clustered, err := benchkit.Fig10(benchkit.DefaultQ, fractions)
	if err != nil {
		return err
	}
	fmt.Printf("%10s %10s\n", "octree%", "ratio")
	var csvRows [][]string
	for _, r := range rows {
		fmt.Printf("%9.0f%% %10.2f\n", r.OctreeFraction*100, r.Ratio)
		csvRows = append(csvRows, []string{f64(r.OctreeFraction), f64(r.Ratio)})
	}
	csvRows = append(csvRows, []string{"clustered", f64(clustered)})
	fmt.Printf("density-based clustering split: ratio %.2f\n", clustered)
	return writeCSV("fig10", []string{"octree_fraction", "ratio"}, csvRows)
}

func runFig11(frames int, quick bool) error {
	header("Figure 11: ablations (-Radial, -Group, -Conversion) on campus")
	rows, err := benchkit.Fig11(qs(quick), frames)
	if err != nil {
		return err
	}
	fmt.Printf("%-12s %8s %10s %12s\n", "variant", "q(cm)", "ratio", "rel. to full")
	var csvRows [][]string
	for _, r := range rows {
		fmt.Printf("%-12s %8.3f %10.2f %11.0f%%\n", r.Variant, r.Q*100, r.Ratio, r.RelativeToFull*100)
		csvRows = append(csvRows, []string{r.Variant, f64(r.Q), f64(r.Ratio), f64(r.RelativeToFull)})
	}
	return writeCSV("fig11", []string{"variant", "q_m", "ratio", "relative_to_full"}, csvRows)
}

func runTable2(frames int, quick bool) error {
	header("Table 2: outlier compression modes across KITTI scenes (q=2cm)")
	rows, err := benchkit.Table2(benchkit.DefaultQ, frames)
	if err != nil {
		return err
	}
	fmt.Printf("%-10s %-18s %10s\n", "mode", "scene", "ratio")
	var csvRows [][]string
	for _, r := range rows {
		fmt.Printf("%-10s %-18s %10.2f\n", r.Mode, r.Scene, r.Ratio)
		csvRows = append(csvRows, []string{r.Mode, string(r.Scene), f64(r.Ratio)})
	}
	return writeCSV("table2", []string{"mode", "scene", "ratio"}, csvRows)
}

func runFig12(frames int, quick bool) error {
	header("Figure 12: compression/decompression time vs. error bound (city)")
	rows, err := benchkit.Fig12(qs(quick), frames)
	if err != nil {
		return err
	}
	fmt.Printf("%-10s %8s %14s %14s\n", "codec", "q(cm)", "compress", "decompress")
	var csvRows [][]string
	for _, r := range rows {
		fmt.Printf("%-10s %8.3f %14s %14s\n", r.Codec, r.Q*100, r.Compress.Round(1e6), r.Decompress.Round(1e6))
		csvRows = append(csvRows, []string{r.Codec, f64(r.Q), f64(r.Compress.Seconds()), f64(r.Decompress.Seconds())})
	}
	return writeCSV("fig12", []string{"codec", "q_m", "compress_s", "decompress_s"}, csvRows)
}

func runFig13(frames int, quick bool) error {
	header("Figure 13: DBGC stage breakdown (city, q=2cm)")
	res, err := benchkit.Fig13(benchkit.DefaultQ, frames)
	if err != nil {
		return err
	}
	fmt.Printf("compression total %s:\n", res.TotalCompress.Round(1e6))
	fmt.Printf("  DEN %5.1f%%  OCT %5.1f%%  COR %5.1f%%  ORG %5.1f%%  SPA %5.1f%%  OUT %5.1f%%\n",
		res.DEN*100, res.OCT*100, res.COR*100, res.ORG*100, res.SPA*100, res.OUT*100)
	fmt.Printf("decompression total %s\n", res.TotalDecompress.Round(1e6))
	return nil
}

func runCluster(frames int, quick bool) error {
	header("§4.3: clustering — split fractions and approximate speedup (city, q=2cm)")
	res, err := benchkit.ClusterExp(benchkit.DefaultQ)
	if err != nil {
		return err
	}
	fmt.Printf("dense %.1f%%  sparse %.1f%%  outliers %.1f%%\n",
		res.DenseFrac*100, res.SparseFrac*100, res.OutlierFrac*100)
	fmt.Printf("clustering: exact %s vs approx %s (%.1fx)\n",
		res.ExactTime.Round(1e6), res.ApproxTime.Round(1e6), res.ClusterSpeedup)
	fmt.Printf("end-to-end: exact %s vs approx %s (%.2fx)\n",
		res.ExactPipeline.Round(1e6), res.ApproxPipeline.Round(1e6), res.PipelineSpeedup)
	fmt.Printf("dense-set agreement (jaccard): %.3f\n", res.Jaccard)
	return nil
}

func runThroughput(frames int, quick bool) error {
	header("§4.4: throughput and bandwidth (city, q=2cm, 10 fps)")
	res, err := benchkit.Throughput(benchkit.DefaultQ, frames)
	if err != nil {
		return err
	}
	fmt.Printf("points/frame: %d\n", res.PointsPerFrame)
	fmt.Printf("raw stream:        %6.1f Mbps\n", res.RawMbps)
	fmt.Printf("compressed stream: %6.2f Mbps (4G uplink reference %.1f Mbps, fits: %v)\n",
		res.CompressedMbps, res.FourGMbps, res.FitsFourG)
	fmt.Printf("compression: %s/frame (%.1f frames/s sustained, sensor produces 10/s)\n",
		res.CompressPerFrame.Round(1e6), res.FramesPerSecond)
	return nil
}

func runTemporal(frames int, quick bool) error {
	header("Extension: temporal stream compression (static campus capture, q=2cm)")
	n := frames + 3
	if n < 4 {
		n = 4
	}
	res, err := benchkit.Temporal(lidar.Campus, n, benchkit.DefaultQ)
	if err != nil {
		return err
	}
	fmt.Printf("%6s %6s %10s %8s\n", "frame", "kind", "bytes", "ratio")
	for _, r := range res.Frames {
		kind := "I"
		if r.Predicted {
			kind = "P"
		}
		fmt.Printf("%6d %6s %10d %8.2f\n", r.Seq, kind, r.Bytes, r.Ratio)
	}
	fmt.Printf("all-I container %d bytes, temporal %d bytes: %.2fx\n",
		res.PlainBytes, res.TemporalBytes, res.Gain)
	return nil
}

// jsonOut, when set, receives the perf experiment result as JSON.
var jsonOut string

func runPerf(frames int, quick bool) error {
	header("Performance architecture: parallel decode, scratch reuse, frame pipeline (city, q=2cm)")
	res, err := benchkit.Perf(benchkit.DefaultQ, frames)
	if err != nil {
		return err
	}
	fmt.Printf("cpus: %d (GOMAXPROCS %d), %d points/frame, %d bytes compressed (ratio %.2f)\n",
		res.NumCPU, res.GOMAXPROCS, res.PointsPerFrame, res.FrameBytes, res.Ratio)
	fmt.Printf("decode:   serial %7.1f ms, parallel %7.1f ms (%.2fx)\n",
		res.SerialDecodeMs, res.ParallelDecodeMs, res.DecodeSpeedup)
	fmt.Printf("          allocs/op: serial %.0f, parallel %.0f\n",
		res.SerialDecodeAllocs, res.ParallelDecodeAllocs)
	fmt.Printf("compress: serial %7.1f ms, parallel %7.1f ms (%.2fx)\n",
		res.SerialCompressMs, res.ParallelCompressMs, res.CompressSpeedup)
	fmt.Printf("          allocs/op: serial %.0f; parallel byte-identical: %v\n",
		res.SerialCompressAllocs, res.CompressIdentical)
	fmt.Printf("          reusable Encoder: %7.1f ms, %.0f allocs/op\n",
		res.EncoderCompressMs, res.EncoderCompressAllocs)
	fmt.Printf("pipeline (%d frames, %d workers): pack %.1f -> %.1f fps, read %.1f -> %.1f fps, byte-identical: %v\n",
		res.PipelineFrames, res.PipelineWorkers,
		res.SerialPackFPS, res.PipelinedPackFPS,
		res.SerialReadFPS, res.PipelinedReadFPS, res.PipelineIdentical)
	if res.NumCPU == 1 {
		fmt.Println("note: single-core host; parallel paths cannot show wall-clock gains here")
	}
	if jsonOut != "" {
		blob, err := json.MarshalIndent(res, "", "  ")
		if err != nil {
			return err
		}
		blob = append(blob, '\n')
		if err := os.WriteFile(jsonOut, blob, 0o644); err != nil {
			return err
		}
		fmt.Printf("wrote %s\n", jsonOut)
	}
	return nil
}

// sweepShards and sweepProcs hold the -shards / -gomaxprocs flags for the
// sweep experiment.
var (
	sweepShards int
	sweepProcs  []int
)

func parseInts(s string) ([]int, error) {
	var out []int
	for _, part := range strings.Split(s, ",") {
		part = strings.TrimSpace(part)
		if part == "" {
			continue
		}
		v, err := strconv.Atoi(part)
		if err != nil {
			return nil, err
		}
		out = append(out, v)
	}
	return out, nil
}

func runSweep(frames int, quick bool) error {
	header("Multi-core scaling: GOMAXPROCS sweep of the sharded codec (city, q=2cm)")
	res, err := benchkit.Sweep(benchkit.DefaultQ, sweepShards, sweepProcs, frames)
	if err != nil {
		return err
	}
	fmt.Printf("cpus: %d, shards: %d, %d points/frame, %d bytes (ratio %.2f; legacy %.2f, drift %+.3f%%)\n",
		res.NumCPU, res.Shards, res.PointsPerFrame, res.FrameBytes, res.Ratio, res.LegacyRatio, res.RatioDeltaPct)
	fmt.Printf("shards=1 byte-identical to legacy container: %v\n", res.ShardsOneIdentical)
	fmt.Printf("%6s %8s %12s %12s %10s %10s %12s %12s\n",
		"procs", "workers", "compress", "decompress", "pack/s", "unpack/s", "stream-pack", "stream-unpack")
	var csvRows [][]string
	for _, p := range res.Sweep {
		fmt.Printf("%6d %8d %9.1f ms %9.1f ms %10.2f %10.2f %12.2f %12.2f\n",
			p.GOMAXPROCS, p.Workers, p.CompressMs, p.DecompressMs,
			p.PackFPS, p.UnpackFPS, p.StreamPackFPS, p.StreamUnpackFPS)
		fmt.Printf("       speedup vs procs=1: compress %.2fx, decompress %.2fx | stages DEN %.1f OCT %.1f (ENT %.1f) COR %.1f ORG %.1f SPA %.1f OUT %.1f ms\n",
			p.CompressSpeedup, p.DecompressSpeedup,
			p.Stages.DEN, p.Stages.OCT, p.Stages.ENT, p.Stages.COR, p.Stages.ORG, p.Stages.SPA, p.Stages.OUT)
		csvRows = append(csvRows, []string{
			fmt.Sprint(p.GOMAXPROCS), fmt.Sprint(p.Workers),
			f64(p.CompressMs), f64(p.DecompressMs),
			f64(p.CompressSpeedup), f64(p.DecompressSpeedup),
			f64(p.StreamPackFPS), f64(p.StreamUnpackFPS),
		})
	}
	if res.NumCPU == 1 {
		fmt.Println("note: single-core host; the sweep documents the plateau, not a multi-core gain")
	}
	if jsonOut != "" {
		blob, err := json.MarshalIndent(res, "", "  ")
		if err != nil {
			return err
		}
		blob = append(blob, '\n')
		if err := os.WriteFile(jsonOut, blob, 0o644); err != nil {
			return err
		}
		fmt.Printf("wrote %s\n", jsonOut)
	}
	return writeCSV("sweep", []string{"gomaxprocs", "workers", "compress_ms", "decompress_ms",
		"compress_speedup", "decompress_speedup", "stream_pack_fps", "stream_unpack_fps"}, csvRows)
}

func runPack(frames int, quick bool) error {
	header("Block bitpacking ablation: blockpack vs legacy codecs per integer stream (city, q=2cm)")
	res, err := benchkit.Pack(benchkit.DefaultQ, frames)
	if err != nil {
		return err
	}
	fmt.Printf("%d points, %d iters per timing\n", res.Points, res.Iters)
	fmt.Printf("%-20s %9s %5s %10s %10s %8s %10s %10s %8s\n",
		"stream", "count", "segs", "leg bytes", "bp bytes", "Δbytes", "leg dec", "bp dec", "dec spd")
	var csvRows [][]string
	for _, s := range res.Streams {
		fmt.Printf("%-20s %9d %5d %10d %10d %+7.1f%% %8.2fms %8.2fms %7.2fx\n",
			s.Name, s.Count, s.Segments, s.LegacyBytes, s.PackBytes, s.BytesDeltaPct,
			s.LegacyDecNs/1e6, s.PackDecNs/1e6, s.DecodeSpeedup)
		csvRows = append(csvRows, []string{
			s.Name, fmt.Sprint(s.Count), fmt.Sprint(s.LegacyBytes), fmt.Sprint(s.PackBytes),
			f64(s.LegacyEncNs), f64(s.PackEncNs), f64(s.LegacyDecNs), f64(s.PackDecNs),
			f64(s.DecodeSpeedup),
		})
	}
	fmt.Printf("streams total: %d -> %d bytes, decode speedup %.2fx (min %.2fx)\n",
		res.TotalLegacyBytes, res.TotalPackBytes, res.TotalDecodeSpeedup, res.MinDecodeSpeedup)
	fmt.Printf("%-26s %8s %8s %8s %10s %12s %8s\n",
		"container", "version", "shards", "ratio", "bytes", "vs v3", "ok")
	for _, f := range res.Frames {
		fmt.Printf("%-26s %8d %8d %8.2f %10d %+11.3f%% %8v\n",
			f.Config, f.Version, f.Shards, f.Ratio, f.Bytes, f.DeltaVsV3Pct, f.RoundTripOK)
	}
	fmt.Printf("v4 no larger than v3 and all round trips ok: %v\n", res.V4WithinV3)
	if jsonOut != "" {
		blob, err := json.MarshalIndent(res, "", "  ")
		if err != nil {
			return err
		}
		blob = append(blob, '\n')
		if err := os.WriteFile(jsonOut, blob, 0o644); err != nil {
			return err
		}
		fmt.Printf("wrote %s\n", jsonOut)
	}
	return writeCSV("pack", []string{"stream", "count", "legacy_bytes", "blockpack_bytes",
		"legacy_encode_ns", "blockpack_encode_ns", "legacy_decode_ns", "blockpack_decode_ns",
		"decode_speedup"}, csvRows)
}

func runCtx(frames int, quick bool) error {
	header("Context-modeled entropy coding ablation: feature sweep and v5 dialect matrix (city, q=2cm)")
	res, err := benchkit.Ctx(benchkit.DefaultQ, frames)
	if err != nil {
		return err
	}
	fmt.Printf("%d points, %d iters per timing\n", res.Points, res.Iters)
	fmt.Printf("%-26s %9s %10s %10s %8s %10s %10s\n",
		"features", "contexts", "leg bytes", "ctx bytes", "Δbytes", "enc", "dec")
	var csvRows [][]string
	for _, s := range res.Features {
		fmt.Printf("%-26s %9d %10d %10d %+7.2f%% %8.2fms %8.2fms\n",
			s.Features, s.Contexts, s.LegacyBytes, s.CtxBytes, s.BytesDeltaPct,
			s.EncNs/1e6, s.DecNs/1e6)
		csvRows = append(csvRows, []string{
			s.Features, fmt.Sprint(s.Contexts), fmt.Sprint(s.LegacyBytes), fmt.Sprint(s.CtxBytes),
			f64(s.BytesDeltaPct), f64(s.EncNs), f64(s.DecNs),
		})
	}
	fmt.Printf("sparse section: %d -> %d bytes (%+.2f%%)\n",
		res.SparseLegacyBytes, res.SparseCtxBytes, res.SparseDeltaPct)
	fmt.Printf("%-38s %8s %8s %8s %10s %10s %11s %11s %9s %6s\n",
		"container", "version", "shards", "ratio", "bytes", "vs base", "unpack fps", "stream fps", "par=ser", "ok")
	for _, f := range res.Frames {
		fmt.Printf("%-38s %8d %8d %8.2f %10d %+9.3f%% %11.1f %11.1f %9v %6v\n",
			f.Config, f.Version, f.Shards, f.Ratio, f.Bytes, f.DeltaVsBasePct,
			f.UnpackFPS, f.StreamUnpackFPS, f.ParallelIdentical, f.RoundTripOK)
	}
	fmt.Printf("headline ctx ratio %.2f (plateau 20.5 broken: %v), guard ok: %v, unpack within 15%%: %v\n",
		res.CtxRatio, res.PlateauBroken, res.GuardOK, res.UnpackWithin15Pct)
	if jsonOut != "" {
		blob, err := json.MarshalIndent(res, "", "  ")
		if err != nil {
			return err
		}
		blob = append(blob, '\n')
		if err := os.WriteFile(jsonOut, blob, 0o644); err != nil {
			return err
		}
		fmt.Printf("wrote %s\n", jsonOut)
	}
	return writeCSV("ctx", []string{"features", "contexts", "legacy_bytes", "ctx_bytes",
		"bytes_delta_pct", "encode_ns", "decode_ns"}, csvRows)
}

func runMemory(frames int, quick bool) error {
	header("§4.4: memory (city, q=2cm)")
	res, err := benchkit.Memory(benchkit.DefaultQ)
	if err != nil {
		return err
	}
	fmt.Printf("compression heap growth:   %6.1f MB (paper: ~45 MB RSS)\n", res.CompressHeapMB)
	fmt.Printf("decompression heap growth: %6.1f MB (paper: ~12 MB RSS)\n", res.DecompressHeapMB)
	return nil
}
