package main

import (
	"encoding/csv"
	"fmt"
	"os"
	"path/filepath"
)

// csvOut, when non-empty, is the directory experiment runners write raw
// rows into (one file per experiment) for plotting.
var csvOut string

// writeCSV stores rows under csvOut/name.csv; a no-op when CSV output is
// disabled.
func writeCSV(name string, header []string, rows [][]string) error {
	if csvOut == "" {
		return nil
	}
	f, err := os.Create(filepath.Join(csvOut, name+".csv"))
	if err != nil {
		return err
	}
	w := csv.NewWriter(f)
	if err := w.Write(header); err != nil {
		f.Close()
		return err
	}
	if err := w.WriteAll(rows); err != nil {
		f.Close()
		return err
	}
	w.Flush()
	if err := w.Error(); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}

func f64(v float64) string { return fmt.Sprintf("%g", v) }
