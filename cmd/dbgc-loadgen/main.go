// Command dbgc-loadgen is the chaos/soak harness for the multi-tenant
// ingest service: it runs an in-process dbgc ingest server whose tenant
// shards sit on simulated crash-prone disks (faultnet.Disk), drives it with
// concurrent reliable clients over fault-injected links (faultnet link
// flips, drops, torn writes), and — at configurable points mid-traffic —
// crashes the disks and the server, restarts everything on the same
// address, and lets the clients reconnect and converge.
//
// The harness enforces the system's core durability contract: with
// group-committed fsync, an acked frame is on stable storage, so after any
// number of induced crashes every frame the clients saw acknowledged must
// be present and intact in the reopened shards. Any missing or corrupt
// acked frame is a loss, reported and fatal (exit code 1).
//
// Results (throughput, latency quantiles, backpressure and shed counters,
// per-crash recovery times, loss counts) are written as JSON to -out for
// CI trending.
//
// Usage:
//
//	dbgc-loadgen [-tenants 4] [-clients 2] [-frames 200] [-frame-bytes 2048]
//	             [-crashes 2] [-downtime 250ms] [-seed 1]
//	             [-flip 0.001] [-drop 0.002] [-tear 0.005] [-write-err 0.0005]
//	             [-shed-high 0] [-shed-low 0] [-dir work] [-out BENCH_load.json]
package main

import (
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"hash/crc32"
	"log"
	"math/rand"
	"net"
	"os"
	"sync"
	"sync/atomic"
	"time"

	"dbgc/internal/faultnet"
	"dbgc/internal/netproto"
	"dbgc/internal/reliable"
	"dbgc/internal/store"
)

func main() {
	tenants := flag.Int("tenants", 4, "number of tenants")
	clientsPer := flag.Int("clients", 2, "concurrent clients per tenant")
	frames := flag.Int("frames", 200, "frames per client")
	frameBytes := flag.Int("frame-bytes", 2048, "payload bytes per frame")
	crashes := flag.Int("crashes", 2, "induced crash-restart cycles during the run")
	downtime := flag.Duration("downtime", 250*time.Millisecond, "server downtime per crash")
	seed := flag.Int64("seed", 1, "master seed for all fault schedules")
	flip := flag.Float64("flip", 0.001, "link bit-flip probability per I/O")
	drop := flag.Float64("drop", 0.002, "link drop probability per write")
	tear := flag.Float64("tear", 0.005, "link torn-write probability per write")
	writeErr := flag.Float64("write-err", 0.0005, "disk injected write-fault probability")
	shedHigh := flag.Int("shed-high", 0, "server shed high-water mark (0 = shedding off)")
	shedLow := flag.Int("shed-low", 0, "server shed low-water mark")
	failover := flag.Bool("failover", false, "run the primary→follower replication failover scenario instead of the single-node soak")
	syncTimeout := flag.Duration("sync-timeout", time.Second, "sync-replication follower ack budget per frame (failover scenario)")
	dir := flag.String("dir", "", "shard directory (default: a fresh temp dir, removed on success)")
	out := flag.String("out", "BENCH_load.json", "result JSON path")
	verbose := flag.Bool("v", false, "log per-client reliability events")
	flag.Parse()

	if s := os.Getenv("FAULTNET_SEED"); s != "" {
		var v int64
		if _, err := fmt.Sscanf(s, "%d", &v); err == nil {
			*seed = v
		}
	}
	log.Printf("dbgc-loadgen: seed %d (replay with FAULTNET_SEED=%d)", *seed, *seed)

	workDir := *dir
	cleanupDir := false
	if workDir == "" {
		var err error
		workDir, err = os.MkdirTemp("", "dbgc-loadgen-*")
		if err != nil {
			log.Fatal(err)
		}
		cleanupDir = true
	}

	if *failover {
		os.Exit(runFailover(failoverOpts{
			tenants: *tenants, clientsPer: *clientsPer,
			frames: *frames, frameBytes: *frameBytes,
			seed: *seed, flip: *flip, drop: *drop, tear: *tear, writeErr: *writeErr,
			downtime: *downtime, syncTimeout: *syncTimeout,
			dir: workDir, cleanupDir: cleanupDir, out: *out, verbose: *verbose,
		}))
	}

	h := &harness{
		dir:      workDir,
		seed:     *seed,
		writeErr: *writeErr,
		shedHigh: *shedHigh,
		shedLow:  *shedLow,
		verbose:  *verbose,
		disks:    make(map[string]*faultnet.Disk),
	}
	if err := h.start("127.0.0.1:0"); err != nil {
		log.Fatalf("starting server: %v", err)
	}
	addr := h.addr

	totalFrames := *tenants * *clientsPer * *frames
	var sentSoFar atomic.Int64
	results := make([]clientResult, *tenants**clientsPer)
	var wg sync.WaitGroup
	start := time.Now()
	for t := 0; t < *tenants; t++ {
		for c := 0; c < *clientsPer; c++ {
			idx := t**clientsPer + c
			cc := clientConfig{
				tenant:     fmt.Sprintf("tenant%02d", t),
				baseSeq:    uint64(c) * 1_000_000,
				frames:     *frames,
				frameBytes: *frameBytes,
				seed:       *seed + int64(idx)*7919,
				flip:       *flip,
				drop:       *drop,
				tear:       *tear,
				addr:       addr,
				verbose:    *verbose,
			}
			wg.Add(1)
			go func() {
				defer wg.Done()
				results[idx] = runClient(cc, &sentSoFar)
			}()
		}
	}
	clientsDone := make(chan struct{})
	go func() {
		wg.Wait()
		close(clientsDone)
	}()

	// Crash controller: at evenly spaced progress points, crash the disks
	// under live traffic, kill the server, restart on the same address,
	// and measure how long the service takes to ack its first frame again.
	var crashReports []crashReport
	for i := 0; i < *crashes; i++ {
		target := int64(totalFrames * (i + 1) / (*crashes + 1))
		if !waitProgress(&sentSoFar, target, clientsDone) {
			log.Printf("clients finished before crash %d; skipping remaining crashes", i+1)
			break
		}
		rep := h.crash()
		log.Printf("crash %d: %d shards crashed, %d unsynced ops survived, %d torn tails",
			i+1, rep.Shards, rep.SurvivedOps, rep.TornTails)
		time.Sleep(*downtime)
		t0 := time.Now()
		if err := h.start(addr); err != nil {
			log.Fatalf("restart after crash %d: %v", i+1, err)
		}
		rep.RecoveryMs = float64(h.awaitFirstAck(10*time.Second).Microseconds()) / 1000
		rep.RestartMs = float64(time.Since(t0).Microseconds()) / 1000
		crashReports = append(crashReports, rep)
		log.Printf("crash %d: restarted in %.1fms, first ack after %.1fms", i+1, rep.RestartMs, rep.RecoveryMs)
	}
	<-clientsDone
	duration := time.Since(start)
	h.stop()

	// Verification: reopen every shard with the plain store (full rebuild,
	// truncate-at-first-corrupt) and require every acked frame intact.
	failures := 0
	for i, r := range results {
		if r.Err != "" {
			log.Printf("client %d (%s): FAILED: %s", i, r.Tenant, r.Err)
			failures++
		}
	}
	lost, verified, verr := verifyShards(workDir, results)
	if verr != nil {
		log.Fatalf("verification: %v", verr)
	}

	res := buildResult(*tenants, *clientsPer, *frames, *frameBytes, *seed, duration,
		h.totals, crashReports, results, verified, lost, failures)
	writeResult(*out, res)
	log.Printf("soak: %d frames acked in %v (%.0f frames/s, %.2f MB/s), p99 %.2fms, %d busy nacks, %d quarantined, %d shed, %d crashes",
		res.FramesAcked, duration.Round(time.Millisecond), res.FramesPerSec, res.MBytesPerSec,
		res.LatencyP99Ms, res.BusyNacked, res.Quarantined, res.TenantsShed, len(crashReports))
	if lost > 0 || failures > 0 {
		log.Printf("FAIL: %d acked frames lost, %d clients failed (work dir kept at %s)", lost, failures, workDir)
		os.Exit(1)
	}
	log.Printf("PASS: zero acked-frame loss across %d verified frames and %d induced crashes", verified, len(crashReports))
	if cleanupDir {
		os.RemoveAll(workDir)
	}
}

// waitProgress blocks until the sent counter reaches target; false when the
// clients finish first.
func waitProgress(sent *atomic.Int64, target int64, done <-chan struct{}) bool {
	for sent.Load() < target {
		select {
		case <-done:
			return false
		case <-time.After(2 * time.Millisecond):
		}
	}
	return true
}

// harness owns one epoch of the server stack: listener, reliable server,
// shard set on crash-prone disks, and the fsync group. Crash tears it all
// down the hard way; start builds a fresh epoch over the same directory.
type harness struct {
	dir      string
	seed     int64
	writeErr float64
	shedHigh int
	shedLow  int
	verbose  bool
	addr     string

	mu     sync.Mutex
	disks  map[string]*faultnet.Disk
	epoch  int
	shards *store.Shards
	group  *store.Group
	srv    *reliable.Server
	ln     net.Listener

	totals totals
}

// totals accumulates server metrics across epochs (each restart starts a
// fresh Metrics).
type totals struct {
	FramesIn, BytesIn, Acked, Nacked, BusyNacked uint64
	Quarantined, SessionsRejected, TenantsShed   uint64
	SessionsOpened, SessionsStalled              uint64
	P50Ms, P99Ms                                 float64 // max across epochs
}

func (t *totals) add(s reliable.MetricsSnapshot) {
	t.FramesIn += s.FramesIn
	t.BytesIn += s.BytesIn
	t.Acked += s.Acked
	t.Nacked += s.Nacked
	t.BusyNacked += s.BusyNacked
	t.Quarantined += s.Quarantined
	t.SessionsRejected += s.SessionsRejected
	t.TenantsShed += s.TenantsShed
	t.SessionsOpened += s.SessionsOpened
	t.SessionsStalled += s.SessionsStalled
	if s.LatencyP50Ms > t.P50Ms {
		t.P50Ms = s.LatencyP50Ms
	}
	if s.LatencyP99Ms > t.P99Ms {
		t.P99Ms = s.LatencyP99Ms
	}
}

func (h *harness) start(addr string) error {
	h.mu.Lock()
	h.epoch++
	epoch := h.epoch
	h.mu.Unlock()
	shards, err := store.OpenShards(h.dir, 32)
	if err != nil {
		return err
	}
	// Every shard file sits on a simulated crash-prone disk; the seed is
	// derived from (master seed, epoch, path) so each epoch replays its
	// own deterministic fault schedule.
	shards.OpenFile = func(path string) (store.File, error) {
		f, err := os.OpenFile(path, os.O_RDWR|os.O_CREATE, 0o644)
		if err != nil {
			return nil, err
		}
		fi, err := f.Stat()
		if err != nil {
			f.Close()
			return nil, err
		}
		d := faultnet.NewDisk(f, fi.Size(), faultnet.DiskConfig{
			Seed:         h.seed ^ int64(epoch)<<32 ^ int64(crc32.ChecksumIEEE([]byte(path))),
			WriteErrProb: h.writeErr,
			TearOnCrash:  true,
			FlipOnTear:   true,
		})
		h.mu.Lock()
		h.disks[path] = d
		h.mu.Unlock()
		return d, nil
	}
	group := store.NewGroup(0)
	logf := func(string, ...any) {}
	if h.verbose {
		logf = log.Printf
	}
	srv := reliable.NewServer(reliable.ServerConfig{
		Handle: func(tenant string, m netproto.Message) error {
			st, err := shards.Acquire(tenant)
			if err != nil {
				return err
			}
			defer shards.Release(tenant)
			if err := st.Put(m.Seq, store.KindCompressed, m.Payload); err != nil {
				return err
			}
			return group.Commit(st) // ack ⇒ durable, fsync shared per round
		},
		ReadTimeout:   30 * time.Second,
		WriteTimeout:  5 * time.Second,
		RetryAfter:    20 * time.Millisecond,
		QueueDepth:    8,
		TenantBudget:  24,
		ShedHighWater: h.shedHigh,
		ShedLowWater:  h.shedLow,
		Logf:          logf,
	})
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		shards.Close()
		group.Close()
		return err
	}
	h.mu.Lock()
	h.shards, h.group, h.srv, h.ln = shards, group, srv, ln
	h.addr = ln.Addr().String()
	h.mu.Unlock()
	go srv.Serve(ln)
	return nil
}

type crashReport struct {
	Shards      int     `json:"shards"`
	SurvivedOps int     `json:"unsynced_ops_survived"`
	TornTails   int     `json:"torn_tails"`
	RestartMs   float64 `json:"restart_ms"`
	RecoveryMs  float64 `json:"first_ack_ms"`
}

// crash pulls the plug: every disk loses its unsynced writes (possibly
// tearing the record mid-write, as power loss does) while traffic is still
// flowing, then the server is killed without draining. Returns what the
// "power loss" destroyed.
func (h *harness) crash() crashReport {
	h.mu.Lock()
	disks := h.disks
	h.disks = make(map[string]*faultnet.Disk)
	srv, group, shards := h.srv, h.group, h.shards
	h.mu.Unlock()

	var rep crashReport
	for _, d := range disks {
		survived, torn, err := d.Crash()
		if err != nil {
			continue
		}
		rep.Shards++
		rep.SurvivedOps += survived
		if torn {
			rep.TornTails++
		}
	}
	// In-flight handlers now fail against crashed disks (nacked frames,
	// clients retry after the restart); kill the server without draining.
	ctx, cancel := expiredContext()
	defer cancel()
	srv.Shutdown(ctx)
	h.totals.add(srv.Metrics().Snapshot())
	group.Close()  // flush errors against crashed disks are expected
	shards.Close() // likewise
	return rep
}

// stop is the graceful end-of-run teardown: drain sessions, flush the
// commit group, sync and close every shard.
func (h *harness) stop() {
	h.mu.Lock()
	srv, group, shards := h.srv, h.group, h.shards
	h.mu.Unlock()
	ctx, cancel := timeoutContext(10 * time.Second)
	defer cancel()
	if err := srv.Shutdown(ctx); err != nil {
		log.Printf("final shutdown: %v", err)
	}
	h.totals.add(srv.Metrics().Snapshot())
	if err := group.Close(); err != nil {
		log.Printf("final group close: %v", err)
	}
	if err := shards.SyncAll(); err != nil {
		log.Printf("final sync: %v", err)
	}
	if err := shards.Close(); err != nil {
		log.Printf("final close: %v", err)
	}
}

// awaitFirstAck polls the current epoch's metrics for the first
// acknowledged frame — the moment the service is truly serving again.
func (h *harness) awaitFirstAck(limit time.Duration) time.Duration {
	h.mu.Lock()
	srv := h.srv
	h.mu.Unlock()
	t0 := time.Now()
	for time.Since(t0) < limit {
		if srv.Metrics().Acked.Load() > 0 {
			return time.Since(t0)
		}
		time.Sleep(time.Millisecond)
	}
	return limit
}

// expiredContext yields an already-cancelled context: Shutdown with it
// force-closes connections instead of draining.
func expiredContext() (context.Context, context.CancelFunc) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	return ctx, cancel
}

func timeoutContext(d time.Duration) (context.Context, context.CancelFunc) {
	return context.WithTimeout(context.Background(), d)
}

type clientConfig struct {
	tenant     string
	baseSeq    uint64
	frames     int
	frameBytes int
	seed       int64
	flip       float64
	drop       float64
	tear       float64
	addr       string
	// addrs switches the client to multi-address failover mode (used by
	// the -failover scenario; overrides addr).
	addrs []string
	// ackTimeout overrides the 2s default resend timer (sync replication
	// holds acks longer than a single-node server would).
	ackTimeout time.Duration
	// onAck, when set, observes every acknowledged sequence number.
	onAck   func(seq uint64)
	verbose bool
}

type clientResult struct {
	Tenant     string `json:"tenant"`
	BaseSeq    uint64 `json:"base_seq"`
	Sent       int    `json:"sent"`
	Acked      int    `json:"acked"`
	Resent     int    `json:"resent"`
	BusyNacked int    `json:"busy_nacked"`
	Reconnects int    `json:"reconnects"`
	Failovers  int    `json:"failovers,omitempty"`
	Err        string `json:"err,omitempty"`
}

// runClient streams one client's frames through a fault-injected link,
// retrying and reconnecting as the link and the server epochs demand. A
// clean Close means every sent frame was acknowledged.
func runClient(cc clientConfig, sent *atomic.Int64) clientResult {
	res := clientResult{Tenant: cc.tenant, BaseSeq: cc.baseSeq}
	inj := faultnet.New(faultnet.Config{
		Seed:        cc.seed,
		FlipProb:    cc.flip,
		DropProb:    cc.drop,
		PartialProb: cc.tear,
	})
	logf := func(string, ...any) {}
	if cc.verbose {
		logf = log.Printf
	}
	ackTimeout := cc.ackTimeout
	if ackTimeout <= 0 {
		ackTimeout = 2 * time.Second
	}
	opts := reliable.Options{
		Tenant:       cc.tenant,
		OnAck:        cc.onAck,
		MaxInFlight:  8,
		AckTimeout:   ackTimeout,
		BaseBackoff:  10 * time.Millisecond,
		MaxBackoff:   500 * time.Millisecond,
		MaxStalls:    2000, // must survive crash windows and shed periods
		FrameRetries: 1000, // link flips burn retries; the budget is generous
		BusyRetries:  10000,
		Seed:         cc.seed,
		Logf:         logf,
	}
	if len(cc.addrs) > 0 {
		opts.Addrs = cc.addrs
		opts.DialTo = func(addr string) (net.Conn, error) {
			c, err := net.Dial("tcp", addr)
			if err != nil {
				return nil, err
			}
			return inj.Wrap(c), nil
		}
	} else {
		opts.Dial = func() (net.Conn, error) {
			c, err := net.Dial("tcp", cc.addr)
			if err != nil {
				return nil, err
			}
			return inj.Wrap(c), nil
		}
	}
	cli, err := reliable.NewClient(opts)
	if err != nil {
		res.Err = err.Error()
		return res
	}
	for i := 0; i < cc.frames; i++ {
		seq := cc.baseSeq + uint64(i)
		if err := cli.Send(netproto.Message{
			Kind:    netproto.KindCompressed,
			Seq:     seq,
			Payload: framePayload(cc.tenant, seq, cc.frameBytes),
		}); err != nil {
			res.Err = fmt.Sprintf("send %d: %v", seq, err)
			return res
		}
		res.Sent++
		sent.Add(1)
	}
	if err := cli.Close(); err != nil {
		res.Err = fmt.Sprintf("close: %v", err)
	}
	st := cli.Stats()
	res.Acked, res.Resent, res.BusyNacked, res.Reconnects = st.Acked, st.Resent, st.BusyNacked, st.Reconnects
	res.Failovers = st.Failovers
	return res
}

// framePayload is deterministic per (tenant, seq) so verification can
// recompute the expected bytes without bookkeeping.
func framePayload(tenant string, seq uint64, n int) []byte {
	h := crc32.ChecksumIEEE([]byte(tenant))
	rng := rand.New(rand.NewSource(int64(h)<<32 ^ int64(seq)))
	b := make([]byte, n)
	for i := range b {
		b[i] = byte(rng.Intn(256))
	}
	return b
}

// verifyShards reopens every tenant shard cold (plain files, full rebuild)
// and checks that each frame a client saw acknowledged is present and
// byte-identical. Returns (lost, verified) counts.
func verifyShards(dir string, results []clientResult) (lost, verified int, err error) {
	byTenant := map[string][]clientResult{}
	for _, r := range results {
		byTenant[r.Tenant] = append(byTenant[r.Tenant], r)
	}
	for tenant, clients := range byTenant {
		st, err := store.Open(fmt.Sprintf("%s/%s.db", dir, tenant))
		if err != nil {
			return lost, verified, fmt.Errorf("reopening %s shard: %w", tenant, err)
		}
		for _, c := range clients {
			// A clean client acked everything it sent; a failed client's
			// ack set is unknown, so its frames are skipped here (the
			// failure itself already fails the run).
			if c.Err != "" {
				continue
			}
			for i := 0; i < c.Sent; i++ {
				seq := c.BaseSeq + uint64(i)
				payload, kind, gerr := st.Get(seq)
				if gerr != nil {
					log.Printf("LOST: %s frame %d: %v", tenant, seq, gerr)
					lost++
					continue
				}
				want := framePayload(tenant, seq, len(payload))
				if kind != store.KindCompressed || len(payload) == 0 || crc32.ChecksumIEEE(payload) != crc32.ChecksumIEEE(want) {
					log.Printf("CORRUPT: %s frame %d: kind %d, %d bytes", tenant, seq, kind, len(payload))
					lost++
					continue
				}
				verified++
			}
		}
		st.Close()
	}
	return lost, verified, nil
}

type benchResult struct {
	Config struct {
		Tenants    int   `json:"tenants"`
		Clients    int   `json:"clients_per_tenant"`
		Frames     int   `json:"frames_per_client"`
		FrameBytes int   `json:"frame_bytes"`
		Seed       int64 `json:"seed"`
	} `json:"config"`
	DurationS        float64         `json:"duration_s"`
	FramesAcked      uint64          `json:"frames_acked"`
	FramesPerSec     float64         `json:"frames_per_s"`
	MBytesPerSec     float64         `json:"mbytes_per_s"`
	LatencyP50Ms     float64         `json:"latency_p50_ms"`
	LatencyP99Ms     float64         `json:"latency_p99_ms"`
	BusyNacked       uint64          `json:"busy_nacked"`
	Nacked           uint64          `json:"nacked"`
	Quarantined      uint64          `json:"quarantined"`
	TenantsShed      uint64          `json:"tenants_shed"`
	SessionsRejected uint64          `json:"sessions_rejected"`
	SessionsStalled  uint64          `json:"sessions_stalled"`
	SessionsOpened   uint64          `json:"sessions_opened"`
	Crashes          []crashReport   `json:"crashes"`
	Clients          []clientResult  `json:"clients"`
	VerifiedFrames   int             `json:"verified_frames"`
	LostFrames       int             `json:"lost_frames"`
	FailedClients    int             `json:"failed_clients"`
	Failover         *failoverReport `json:"failover,omitempty"`
}

// writeResult serializes one run's result JSON for CI trending.
func writeResult(path string, res benchResult) {
	blob, _ := json.MarshalIndent(res, "", "  ")
	if err := os.WriteFile(path, append(blob, '\n'), 0o644); err != nil {
		log.Fatalf("writing %s: %v", path, err)
	}
	log.Printf("wrote %s", path)
}

func buildResult(tenants, clients, frames, frameBytes int, seed int64, dur time.Duration,
	t totals, crashes []crashReport, clientRes []clientResult, verified, lost, failures int) benchResult {
	var r benchResult
	r.Config.Tenants = tenants
	r.Config.Clients = clients
	r.Config.Frames = frames
	r.Config.FrameBytes = frameBytes
	r.Config.Seed = seed
	r.DurationS = dur.Seconds()
	r.FramesAcked = t.Acked
	r.FramesPerSec = float64(t.Acked) / dur.Seconds()
	r.MBytesPerSec = float64(t.BytesIn) / dur.Seconds() / (1 << 20)
	r.LatencyP50Ms = t.P50Ms
	r.LatencyP99Ms = t.P99Ms
	r.BusyNacked = t.BusyNacked
	r.Nacked = t.Nacked
	r.Quarantined = t.Quarantined
	r.TenantsShed = t.TenantsShed
	r.SessionsRejected = t.SessionsRejected
	r.SessionsStalled = t.SessionsStalled
	r.SessionsOpened = t.SessionsOpened
	r.Crashes = crashes
	r.Clients = clientRes
	r.VerifiedFrames = verified
	r.LostFrames = lost
	r.FailedClients = failures
	return r
}
