// The -failover scenario: a two-node replicated deployment under chaos.
//
// A primary and a follower run in-process, each on its own crash-prone
// faultnet.Disk shard set. The primary replicates every committed record
// to the follower over a fault-injected link (bit flips, drops, torn
// writes) in sync mode: a client ack is withheld until the record is
// durable on BOTH nodes. Multi-address clients stream frames against
// [primary, follower], recording exactly which sequence numbers were
// acknowledged.
//
// Mid-run the harness (1) severs the replication link and asserts the
// primary's /healthz degrades, then heals it and asserts recovery;
// (2) kills the primary the hard way — disk crash under live traffic, no
// drain — promotes the follower, and lets the clients fail over to it.
//
// The contract under test: after the follower is cold-reopened at the
// end, every sync-acked frame must be present and intact there. A frame
// acked before the kill was follower-durable by the sync gate; a frame
// acked after it was written by the promoted follower itself. Any loss
// is fatal.
package main

import (
	"fmt"
	"hash/crc32"
	"io"
	"log"
	"net"
	"net/http"
	"os"
	"path/filepath"
	"sync"
	"sync/atomic"
	"time"

	"dbgc/internal/faultnet"
	"dbgc/internal/netproto"
	"dbgc/internal/ops"
	"dbgc/internal/reliable"
	"dbgc/internal/replica"
	"dbgc/internal/store"
)

// failoverOpts carries the flag subset the failover scenario uses.
type failoverOpts struct {
	tenants, clientsPer, frames, frameBytes int
	seed                                    int64
	flip, drop, tear, writeErr              float64
	downtime, syncTimeout                   time.Duration
	dir                                     string
	cleanupDir                              bool
	out                                     string
	verbose                                 bool
}

// failoverReport is the failover-specific section of BENCH_load.json.
type failoverReport struct {
	PromotedEpoch     int                   `json:"promoted_epoch"`
	KillAtFrames      int64                 `json:"kill_at_frames"`
	FirstAckAfterMs   float64               `json:"first_ack_after_promote_ms"`
	ClientFailovers   int                   `json:"client_failovers"`
	HealthDegradedMs  float64               `json:"healthz_degraded_after_ms"`
	HealthRecoveredMs float64               `json:"healthz_recovered_after_ms"`
	Sender            replica.SenderStats   `json:"primary_sender"`
	Receiver          replica.ReceiverStats `json:"follower_receiver"`
	AckedFrames       int                   `json:"sync_acked_frames"`
}

// replNode is one node of the replicated pair: shard set on faultnet
// disks, fsync group, reliable server, and the node's replication role
// (sender on the primary, receiver on the follower).
type replNode struct {
	name     string
	dir      string
	seed     int64
	writeErr float64
	tot      *totals

	mu    sync.Mutex
	disks map[string]*faultnet.Disk

	shards   *store.Shards
	group    *store.Group
	srv      *reliable.Server
	ln       net.Listener
	addr     string
	sender   *replica.Sender
	receiver *replica.Receiver
	opsSrv   *http.Server
	opsURL   string
}

// open builds the node's storage stack: every shard file sits on a
// simulated crash-prone disk seeded from (node seed, path).
func (n *replNode) open() error {
	if err := os.MkdirAll(n.dir, 0o755); err != nil {
		return err
	}
	shards, err := store.OpenShards(n.dir, 32)
	if err != nil {
		return err
	}
	shards.OpenFile = func(path string) (store.File, error) {
		f, err := os.OpenFile(path, os.O_RDWR|os.O_CREATE, 0o644)
		if err != nil {
			return nil, err
		}
		fi, err := f.Stat()
		if err != nil {
			f.Close()
			return nil, err
		}
		d := faultnet.NewDisk(f, fi.Size(), faultnet.DiskConfig{
			Seed:         n.seed ^ int64(crc32.ChecksumIEEE([]byte(path))),
			WriteErrProb: n.writeErr,
			TearOnCrash:  true,
			FlipOnTear:   true,
		})
		n.mu.Lock()
		n.disks[path] = d
		n.mu.Unlock()
		return d, nil
	}
	n.shards = shards
	n.group = store.NewGroup(0)
	return nil
}

// serve starts the node's reliable server on a fresh loopback port.
func (n *replNode) serve(cfg reliable.ServerConfig) error {
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		return err
	}
	n.srv = reliable.NewServer(cfg)
	n.ln = ln
	n.addr = ln.Addr().String()
	go n.srv.Serve(ln)
	return nil
}

// serveOps starts the node's operational HTTP endpoint (/healthz,
// /metrics) on a fresh loopback port.
func (n *replNode) serveOps(health *ops.Health, metrics func() any) error {
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		return err
	}
	n.opsSrv = ops.NewServer("", health, metrics)
	n.opsURL = "http://" + ln.Addr().String()
	go n.opsSrv.Serve(ln)
	return nil
}

// crash pulls the plug on the node: every disk loses its unsynced writes
// (possibly tearing a record mid-write), the server dies without
// draining, and the replication sender — if any — is stopped.
func (n *replNode) crash() crashReport {
	n.mu.Lock()
	disks := n.disks
	n.disks = make(map[string]*faultnet.Disk)
	n.mu.Unlock()
	var rep crashReport
	for _, d := range disks {
		survived, torn, err := d.Crash()
		if err != nil {
			continue
		}
		rep.Shards++
		rep.SurvivedOps += survived
		if torn {
			rep.TornTails++
		}
	}
	ctx, cancel := expiredContext()
	defer cancel()
	n.srv.Shutdown(ctx)
	n.tot.add(n.srv.Metrics().Snapshot())
	if n.sender != nil {
		n.sender.Stop()
		n.sender.Wait()
	}
	if n.opsSrv != nil {
		n.opsSrv.Close()
	}
	n.group.Close()  // flush errors against crashed disks are expected
	n.shards.Close() // likewise
	return rep
}

// stopGraceful is the end-of-run teardown: drain sessions, persist the
// replication watermarks, flush and close the storage stack.
func (n *replNode) stopGraceful() {
	ctx, cancel := timeoutContext(10 * time.Second)
	defer cancel()
	if err := n.srv.Shutdown(ctx); err != nil {
		log.Printf("%s shutdown: %v", n.name, err)
	}
	n.tot.add(n.srv.Metrics().Snapshot())
	if n.receiver != nil {
		if err := n.receiver.Close(); err != nil {
			log.Printf("%s receiver close: %v", n.name, err)
		}
	}
	if n.opsSrv != nil {
		n.opsSrv.Close()
	}
	if err := n.group.Close(); err != nil {
		log.Printf("%s group close: %v", n.name, err)
	}
	if err := n.shards.SyncAll(); err != nil {
		log.Printf("%s sync: %v", n.name, err)
	}
	if err := n.shards.Close(); err != nil {
		log.Printf("%s close: %v", n.name, err)
	}
}

// chaosLink is the replication link: every connection runs through a
// faultnet injector, and the harness can sever it (current connections
// die, new dials fail) and heal it again.
type chaosLink struct {
	inj *faultnet.Injector

	mu      sync.Mutex
	severed bool
	conns   map[net.Conn]struct{}
}

func (l *chaosLink) dial(addr string) (net.Conn, error) {
	l.mu.Lock()
	down := l.severed
	l.mu.Unlock()
	if down {
		return nil, fmt.Errorf("repl link severed")
	}
	c, err := net.DialTimeout("tcp", addr, 2*time.Second)
	if err != nil {
		return nil, err
	}
	wc := l.inj.Wrap(c)
	l.mu.Lock()
	if l.severed {
		l.mu.Unlock()
		wc.Close()
		return nil, fmt.Errorf("repl link severed")
	}
	if l.conns == nil {
		l.conns = make(map[net.Conn]struct{})
	}
	l.conns[wc] = struct{}{}
	l.mu.Unlock()
	return wc, nil
}

// sever fails the link: live connections are closed, new dials refused.
func (l *chaosLink) sever() {
	l.mu.Lock()
	l.severed = true
	for c := range l.conns {
		c.Close()
	}
	l.conns = make(map[net.Conn]struct{})
	l.mu.Unlock()
}

func (l *chaosLink) heal() {
	l.mu.Lock()
	l.severed = false
	l.mu.Unlock()
}

// ackSet records which sequence numbers a client saw acknowledged; in
// sync mode each one is a durability promise covering both nodes.
type ackSet struct {
	mu   sync.Mutex
	seqs map[uint64]struct{}
}

func newAckSet() *ackSet { return &ackSet{seqs: make(map[uint64]struct{})} }

func (a *ackSet) add(seq uint64) {
	a.mu.Lock()
	a.seqs[seq] = struct{}{}
	a.mu.Unlock()
}

func (a *ackSet) all() []uint64 {
	a.mu.Lock()
	defer a.mu.Unlock()
	out := make([]uint64, 0, len(a.seqs))
	for s := range a.seqs {
		out = append(out, s)
	}
	return out
}

// awaitHealth polls url/healthz until its status matches wantOK (200 for
// ok, anything else for degraded) or the limit passes.
func awaitHealth(url string, wantOK bool, limit time.Duration) (time.Duration, bool) {
	t0 := time.Now()
	for time.Since(t0) < limit {
		resp, err := http.Get(url + "/healthz")
		if err == nil {
			ok := resp.StatusCode == http.StatusOK
			io.Copy(io.Discard, resp.Body)
			resp.Body.Close()
			if ok == wantOK {
				return time.Since(t0), true
			}
		}
		time.Sleep(5 * time.Millisecond)
	}
	return limit, false
}

// awaitAckAbove waits for the server's ack counter to pass base — the
// moment the promoted follower truly serves client traffic.
func awaitAckAbove(srv *reliable.Server, base uint64, limit time.Duration) time.Duration {
	t0 := time.Now()
	for time.Since(t0) < limit {
		if srv.Metrics().Acked.Load() > base {
			return time.Since(t0)
		}
		time.Sleep(time.Millisecond)
	}
	return limit
}

func runFailover(o failoverOpts) int {
	logf := func(string, ...any) {}
	if o.verbose {
		logf = log.Printf
	}
	tot := &totals{}

	// Follower: receiver wired into the server's replication hooks; client
	// ingest is refused busy until promotion, so multi-address clients
	// bounce off it and stick with the primary.
	follower := &replNode{
		name: "follower", dir: filepath.Join(o.dir, "follower"),
		seed: o.seed ^ 0x5f5f, writeErr: o.writeErr,
		disks: make(map[string]*faultnet.Disk), tot: tot,
	}
	if err := follower.open(); err != nil {
		log.Fatalf("opening follower: %v", err)
	}
	receiver, err := replica.NewReceiver(follower.shards, follower.group, 16)
	if err != nil {
		log.Fatalf("follower receiver: %v", err)
	}
	follower.receiver = receiver
	err = follower.serve(reliable.ServerConfig{
		Handle: func(tenant string, m netproto.Message) error {
			st, err := follower.shards.Acquire(tenant)
			if err != nil {
				return err
			}
			defer follower.shards.Release(tenant)
			if err := st.Put(m.Seq, store.KindCompressed, m.Payload); err != nil {
				return err
			}
			return follower.group.Commit(st)
		},
		ReplHello:    receiver.HandleHello,
		ReplRecord:   receiver.HandleRecord,
		NotReady:     receiver.NotReady,
		ReadTimeout:  30 * time.Second,
		WriteTimeout: 5 * time.Second,
		RetryAfter:   20 * time.Millisecond,
		QueueDepth:   8,
		TenantBudget: 24,
		Logf:         logf,
	})
	if err != nil {
		log.Fatalf("starting follower: %v", err)
	}

	// Primary: sync-replication gate in the handler, sender tailing the
	// shards over the chaos link.
	link := &chaosLink{inj: faultnet.New(faultnet.Config{
		Seed:        o.seed ^ 0x1ea4,
		FlipProb:    o.flip,
		DropProb:    o.drop,
		PartialProb: o.tear,
	})}
	primary := &replNode{
		name: "primary", dir: filepath.Join(o.dir, "primary"),
		seed: o.seed, writeErr: o.writeErr,
		disks: make(map[string]*faultnet.Disk), tot: tot,
	}
	if err := primary.open(); err != nil {
		log.Fatalf("opening primary: %v", err)
	}
	meta, err := replica.LoadMeta(primary.dir)
	if err != nil {
		log.Fatalf("primary meta: %v", err)
	}
	sender, err := replica.NewSender(replica.SenderConfig{
		Shards:        primary.shards,
		Addr:          follower.addr,
		DialTo:        link.dial,
		Epoch:         meta.Epoch,
		Poll:          2 * time.Millisecond,
		ScrubInterval: 750 * time.Millisecond,
		MaxInFlight:   64,
		Seed:          o.seed,
		Logf:          logf,
	})
	if err != nil {
		log.Fatalf("primary sender: %v", err)
	}
	primary.sender = sender
	go sender.Run()
	err = primary.serve(reliable.ServerConfig{
		Handle: func(tenant string, m netproto.Message) error {
			st, err := primary.shards.Acquire(tenant)
			if err != nil {
				return err
			}
			end, err := st.Append(m.Seq, store.KindCompressed, m.Payload)
			if err == nil {
				err = primary.group.Commit(st)
			}
			primary.shards.Release(tenant)
			if err != nil {
				return err
			}
			sender.Kick()
			if err := sender.WaitDurable(tenant, end, o.syncTimeout); err != nil {
				return fmt.Errorf("sync replication: %w", err)
			}
			return nil
		},
		ReadTimeout:  30 * time.Second,
		WriteTimeout: 5 * time.Second,
		RetryAfter:   20 * time.Millisecond,
		QueueDepth:   8,
		TenantBudget: 24,
		Logf:         logf,
	})
	if err != nil {
		log.Fatalf("starting primary: %v", err)
	}

	// The primary's health endpoint: the same probes dbgc-server wires up,
	// asserted on by this harness during the injected fault window.
	const lagMax = 32 << 20
	health := &ops.Health{}
	health.Add("store", func() (string, bool) {
		if err := primary.group.Err(); err != nil {
			return err.Error(), false
		}
		return "", true
	})
	health.Add("replication", func() (string, bool) {
		st := sender.Stats()
		switch {
		case st.Fenced:
			return "fenced by promoted follower", false
		case !st.LinkUp:
			return "follower link down", false
		case st.LagBytes > lagMax:
			return fmt.Sprintf("lag %d bytes over budget", st.LagBytes), false
		}
		return fmt.Sprintf("lag %d bytes", st.LagBytes), true
	})
	err = primary.serveOps(health, func() any {
		return map[string]any{
			"server":      primary.srv.Metrics().Snapshot(),
			"repl_sender": sender.Stats(),
		}
	})
	if err != nil {
		log.Fatalf("primary ops server: %v", err)
	}
	log.Printf("failover: primary %s (ops %s), follower %s", primary.addr, primary.opsURL, follower.addr)

	// Clients: multi-address, primary first, recording every acked seq.
	totalFrames := o.tenants * o.clientsPer * o.frames
	nClients := o.tenants * o.clientsPer
	results := make([]clientResult, nClients)
	acks := make([]*ackSet, nClients)
	var sentSoFar atomic.Int64
	var wg sync.WaitGroup
	start := time.Now()
	for t := 0; t < o.tenants; t++ {
		for c := 0; c < o.clientsPer; c++ {
			idx := t*o.clientsPer + c
			acks[idx] = newAckSet()
			cc := clientConfig{
				tenant:     fmt.Sprintf("tenant%02d", t),
				baseSeq:    uint64(c) * 1_000_000,
				frames:     o.frames,
				frameBytes: o.frameBytes,
				seed:       o.seed + int64(idx)*7919,
				flip:       o.flip,
				drop:       o.drop,
				tear:       o.tear,
				addrs:      []string{primary.addr, follower.addr},
				ackTimeout: o.syncTimeout + 2*time.Second,
				onAck:      acks[idx].add,
				verbose:    o.verbose,
			}
			wg.Add(1)
			go func() {
				defer wg.Done()
				results[idx] = runClient(cc, &sentSoFar)
			}()
		}
	}
	clientsDone := make(chan struct{})
	go func() {
		wg.Wait()
		close(clientsDone)
	}()

	failures := 0
	// Phase 1: traffic flowing, replication caught up → /healthz must
	// converge to ok.
	waitProgress(&sentSoFar, int64(totalFrames/8), clientsDone)
	if d, ok := awaitHealth(primary.opsURL, true, 20*time.Second); !ok {
		log.Printf("FAIL: primary /healthz never reported ok under healthy replication (waited %v)", d)
		failures++
	}

	// Phase 2: sever the replication link mid-traffic. Sync acks stall,
	// the sender's reconnects fail, and /healthz must degrade.
	link.sever()
	log.Printf("failover: replication link severed")
	degradedAfter, degradedOK := awaitHealth(primary.opsURL, false, 20*time.Second)
	if !degradedOK {
		log.Printf("FAIL: primary /healthz stayed ok for %v with the replication link severed", degradedAfter)
		failures++
	} else {
		log.Printf("failover: /healthz degraded %.0fms after link loss", float64(degradedAfter.Microseconds())/1000)
	}

	// Phase 3: heal the link; the sender reconnects, retransmits, drains
	// the lag, and /healthz must recover.
	link.heal()
	recoveredAfter, recoveredOK := awaitHealth(primary.opsURL, true, 30*time.Second)
	if !recoveredOK {
		log.Printf("FAIL: primary /healthz still degraded %v after the link healed", recoveredAfter)
		failures++
	} else {
		log.Printf("failover: /healthz recovered %.0fms after heal", float64(recoveredAfter.Microseconds())/1000)
	}

	// Phase 4: kill the primary under live traffic — disk crash, no drain
	// — then promote the follower and let the clients fail over.
	waitProgress(&sentSoFar, int64(totalFrames/2), clientsDone)
	killAt := sentSoFar.Load()
	senderStats := sender.Stats()
	rep := primary.crash()
	log.Printf("failover: primary killed at %d/%d frames (%d shards crashed, %d unsynced ops lost to the crash, %d torn tails)",
		killAt, totalFrames, rep.Shards, rep.SurvivedOps, rep.TornTails)
	time.Sleep(o.downtime)
	ackedBase := follower.srv.Metrics().Acked.Load()
	epoch, err := receiver.Promote()
	if err != nil {
		log.Fatalf("promoting follower: %v", err)
	}
	firstAck := awaitAckAbove(follower.srv, ackedBase, 20*time.Second)
	rep.RestartMs = float64(o.downtime.Microseconds()) / 1000
	rep.RecoveryMs = float64(firstAck.Microseconds()) / 1000
	log.Printf("failover: follower promoted to epoch %d, first client ack %.1fms later", epoch, rep.RecoveryMs)

	<-clientsDone
	duration := time.Since(start)
	receiverStats := receiver.Stats()
	follower.stopGraceful()

	clientFailovers := 0
	for i, r := range results {
		clientFailovers += r.Failovers
		if r.Err != "" {
			log.Printf("client %d (%s): FAILED: %s", i, r.Tenant, r.Err)
			failures++
		}
	}

	// Verification: cold-reopen the follower's shards and require every
	// sync-acked frame present and intact there.
	ackedTotal := 0
	lost, verified := 0, 0
	byTenant := map[string][]int{}
	for i, r := range results {
		byTenant[r.Tenant] = append(byTenant[r.Tenant], i)
	}
	for tenant, idxs := range byTenant {
		st, err := store.Open(filepath.Join(follower.dir, tenant+".db"))
		if err != nil {
			log.Fatalf("reopening follower %s shard: %v", tenant, err)
		}
		for _, i := range idxs {
			for _, seq := range acks[i].all() {
				ackedTotal++
				payload, kind, gerr := st.Get(seq)
				if gerr != nil {
					log.Printf("LOST: %s frame %d acked but missing on follower: %v", tenant, seq, gerr)
					lost++
					continue
				}
				want := framePayload(tenant, seq, len(payload))
				if kind != store.KindCompressed || len(payload) == 0 || crc32.ChecksumIEEE(payload) != crc32.ChecksumIEEE(want) {
					log.Printf("CORRUPT: %s frame %d on follower: kind %d, %d bytes", tenant, seq, kind, len(payload))
					lost++
					continue
				}
				verified++
			}
		}
		st.Close()
	}

	res := buildResult(o.tenants, o.clientsPer, o.frames, o.frameBytes, o.seed, duration,
		*tot, []crashReport{rep}, results, verified, lost, failures)
	res.Failover = &failoverReport{
		PromotedEpoch:     int(epoch),
		KillAtFrames:      killAt,
		FirstAckAfterMs:   float64(firstAck.Microseconds()) / 1000,
		ClientFailovers:   clientFailovers,
		HealthDegradedMs:  float64(degradedAfter.Microseconds()) / 1000,
		HealthRecoveredMs: float64(recoveredAfter.Microseconds()) / 1000,
		Sender:            senderStats,
		Receiver:          receiverStats,
		AckedFrames:       ackedTotal,
	}
	writeResult(o.out, res)
	log.Printf("failover: %d frames acked in %v, %d client failovers, sender shipped %d records (+%d scrub), receiver applied %d",
		res.FramesAcked, duration.Round(time.Millisecond), clientFailovers,
		senderStats.Records, senderStats.ScrubShipped, receiverStats.Records)
	if lost > 0 || failures > 0 {
		log.Printf("FAIL: %d sync-acked frames lost, %d assertion/client failures (work dir kept at %s)", lost, failures, o.dir)
		return 1
	}
	log.Printf("PASS: zero sync-acked-frame loss across %d verified frames, one primary kill, one promotion", verified)
	if o.cleanupDir {
		os.RemoveAll(o.dir)
	}
	return 0
}
