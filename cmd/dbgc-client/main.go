// Command dbgc-client is the client half of the DBGC system (Figure 2): it
// pulls frames from the (simulated) sensor, compresses them, and streams
// the bit sequences to a dbgc-server over TCP.
//
// By default every frame is acknowledged by the server and retransmitted
// across nacks, timeouts, and reconnects; -noack restores the legacy
// fire-and-forget wire behaviour.
//
// Against a replicated deployment, -servers lists primary and follower
// (comma-separated, primary first): the client fails over to the next
// address whenever a connection attempt fails or the node refuses it busy
// (an unpromoted follower does), and sticks with whichever admits it.
//
// Usage:
//
//	dbgc-client [-server localhost:7045 | -servers host:a,host:b]
//	            [-scene kitti-city] [-frames 10]
//	            [-q 0.02] [-rate 10] [-window 8] [-ack-timeout 5s] [-noack]
//	            [-workers 1] [-partial] [-max-points n] [-mem-budget bytes]
package main

import (
	"errors"
	"flag"
	"fmt"
	"log"
	"net"
	"os"
	"strings"
	"time"

	"dbgc"
	"dbgc/internal/framepipe"
	"dbgc/internal/lidar"
	"dbgc/internal/netproto"
	"dbgc/internal/reliable"
)

// captureJob and compressedFrame carry frames through the -workers
// compression pipeline.
type captureJob struct {
	seq int
	pc  dbgc.PointCloud
}

type compressedFrame struct {
	seq, points, rawSize int
	data                 []byte
	stats                *dbgc.Stats
}

func main() {
	server := flag.String("server", "localhost:7045", "dbgc-server address")
	servers := flag.String("servers", "", "comma-separated server addresses in preference order (failover mode; overrides -server)")
	tenant := flag.String("tenant", "", "tenant name announced to the server (empty = server default tenant)")
	sceneKind := flag.String("scene", string(lidar.City), "scene preset")
	frames := flag.Int("frames", 10, "number of frames to capture and send")
	q := flag.Float64("q", 0.02, "error bound in meters")
	rate := flag.Float64("rate", 10, "sensor frame rate (frames/second); 0 = as fast as possible")
	queryBox := flag.String("query", "", "after sending, query frame 0 for x0,y0,z0,x1,y1,z1")
	window := flag.Int("window", 8, "max unacknowledged frames in flight")
	ackTimeout := flag.Duration("ack-timeout", 5*time.Second, "resend frames unacked after this long")
	noack := flag.Bool("noack", false, "legacy fire-and-forget mode: no acks, no retransmits")
	workers := flag.Int("workers", 1, "compress this many frames concurrently (frames are sent in order)")
	partial := flag.Bool("partial", false, "skip frames the server permanently rejects instead of aborting the run")
	maxPoints := flag.Int64("max-points", 0, "verify each frame decodes under this point limit before sending (0 = no verification)")
	memBudget := flag.Int64("mem-budget", 0, "verify each frame decodes under this memory budget before sending (0 = no verification)")
	flag.Parse()

	scene, err := lidar.NewScene(lidar.SceneKind(*sceneKind), 1)
	if err != nil {
		log.Fatal(err)
	}
	cfg := lidar.HDL64E()
	opts := dbgc.SensorOptions(*q, cfg.Meta())

	var send func(netproto.Message) error
	var query func(netproto.Query) (netproto.Message, error)
	var finish func() error

	if *noack && *servers != "" {
		log.Fatalf("-servers requires acknowledged mode (drop -noack)")
	}
	if *noack {
		conn, err := net.Dial("tcp", *server)
		if err != nil {
			log.Fatalf("connecting to server: %v", err)
		}
		defer conn.Close()
		send = func(m netproto.Message) error { return netproto.Write(conn, m) }
		query = func(qr netproto.Query) (netproto.Message, error) {
			if err := netproto.Write(conn, netproto.Message{
				Kind: netproto.KindQuery, Seq: qr.Seq, Payload: netproto.EncodeQuery(qr),
			}); err != nil {
				return netproto.Message{}, fmt.Errorf("sending query: %w", err)
			}
			return awaitQueryResult(conn)
		}
		finish = func() error {
			return netproto.Write(conn, netproto.Message{Kind: netproto.KindBye, Seq: uint64(*frames)})
		}
	} else {
		opts := reliable.Options{
			Tenant:      *tenant,
			MaxInFlight: *window,
			AckTimeout:  *ackTimeout,
			Logf:        log.Printf,
		}
		if *servers != "" {
			opts.Addrs = strings.Split(*servers, ",")
			opts.DialTo = func(addr string) (net.Conn, error) { return net.Dial("tcp", addr) }
		} else {
			opts.Dial = func() (net.Conn, error) { return net.Dial("tcp", *server) }
		}
		cli, err := reliable.NewClient(opts)
		if err != nil {
			log.Fatal(err)
		}
		send = cli.Send
		query = cli.Query
		finish = func() error {
			if err := cli.Close(); err != nil {
				return err
			}
			st := cli.Stats()
			if st.Resent > 0 || st.Reconnects > 1 || st.Failovers > 0 {
				log.Printf("reliability: %d/%d frames acked, %d resent, %d nacks, %d connections, %d failovers",
					st.Acked, st.Sent, st.Resent, st.Nacked, st.Reconnects, st.Failovers)
			}
			return nil
		}
	}

	var interval time.Duration
	if *rate > 0 {
		interval = time.Duration(float64(time.Second) / *rate)
	}
	var totalRaw, totalCompressed, rejected int
	start := time.Now()
	limits := dbgc.DecodeLimits{MaxPoints: *maxPoints, MemBudget: *memBudget}
	deliver := func(c compressedFrame, err error) {
		if err != nil {
			log.Fatal(err)
		}
		if err := send(netproto.Message{
			Kind:    netproto.KindCompressed,
			Seq:     uint64(c.seq),
			Payload: c.data,
		}); err != nil {
			// With -partial an undeliverable frame (rejected by the server
			// past its retry budget) is logged and skipped; the connection
			// and the rest of the stream continue.
			if *partial && errors.Is(err, reliable.ErrFrameRejected) {
				rejected++
				log.Printf("frame %d: undeliverable, skipping: %v", c.seq, err)
				return
			}
			log.Fatalf("sending frame %d: %v", c.seq, err)
		}
		totalRaw += c.rawSize
		totalCompressed += len(c.data)
		s := c.stats
		log.Printf("frame %d: %d points, %d bytes (ratio %.2f), compress %v",
			c.seq, c.points, len(c.data), s.CompressionRatio(),
			(s.DEN + s.OCT + s.COR + s.ORG + s.SPA + s.OUT).Round(time.Millisecond))
	}
	compressOne := func(j captureJob) (compressedFrame, error) {
		data, stats, err := dbgc.Compress(j.pc, opts)
		if err != nil {
			return compressedFrame{}, fmt.Errorf("compressing frame %d: %w", j.seq, err)
		}
		if limits.MaxPoints > 0 || limits.MemBudget > 0 {
			// Pre-send check: a frame that exceeds the server's decode
			// limits would be nacked on arrival; catch it here instead.
			if _, err := dbgc.DecompressWith(data, dbgc.DecompressOptions{Limits: limits}); err != nil {
				return compressedFrame{}, fmt.Errorf("frame %d exceeds decode limits: %w", j.seq, err)
			}
		}
		return compressedFrame{
			seq: j.seq, points: len(j.pc), rawSize: j.pc.RawSize(),
			data: data, stats: stats,
		}, nil
	}
	if *workers > 1 {
		// Frame pipeline: capture stays paced on this goroutine while up to
		// -workers frames compress concurrently; frames are still sent in
		// capture order.
		pipe := framepipe.New(*workers, 2**workers, compressOne)
		for seq := 0; seq < *frames; seq++ {
			frameStart := time.Now()
			pc := cfg.Simulate(scene, int64(seq+1))
			for {
				c, err, ok := pipe.TryNext()
				if !ok {
					break
				}
				deliver(c, err)
			}
			for pipe.Full() {
				c, err, ok := pipe.Next()
				if !ok {
					break
				}
				deliver(c, err)
			}
			pipe.Submit(captureJob{seq: seq, pc: pc})
			if interval > 0 {
				if sleep := interval - time.Since(frameStart); sleep > 0 {
					time.Sleep(sleep)
				}
			}
		}
		for {
			c, err, ok := pipe.Next()
			if !ok {
				break
			}
			deliver(c, err)
		}
		pipe.Close()
	} else {
		for seq := 0; seq < *frames; seq++ {
			frameStart := time.Now()
			pc := cfg.Simulate(scene, int64(seq+1))
			deliver(compressOne(captureJob{seq: seq, pc: pc}))
			if interval > 0 {
				if sleep := interval - time.Since(frameStart); sleep > 0 {
					time.Sleep(sleep)
				}
			}
		}
	}
	if *queryBox != "" {
		var b dbgc.AABB
		if _, err := fmt.Sscanf(*queryBox, "%f,%f,%f,%f,%f,%f",
			&b.Min.X, &b.Min.Y, &b.Min.Z, &b.Max.X, &b.Max.Y, &b.Max.Z); err != nil {
			log.Fatalf("bad -query %q: %v", *queryBox, err)
		}
		resp, err := query(netproto.Query{Seq: 0, Box: b})
		if err != nil {
			log.Fatalf("query: %v", err)
		}
		fmt.Printf("server returned %d points for frame 0 in box %s\n", len(resp.Payload)/16, *queryBox)
	}
	if err := finish(); err != nil {
		log.Fatalf("finishing session: %v", err)
	}
	elapsed := time.Since(start)
	if rejected > 0 {
		log.Printf("%d of %d frames were undeliverable and skipped", rejected, *frames)
	}
	fmt.Fprintf(os.Stdout, "sent %d frames in %v: %d raw bytes -> %d compressed (ratio %.2f), avg bandwidth %.2f Mbps\n",
		*frames-rejected, elapsed.Round(time.Millisecond), totalRaw, totalCompressed,
		float64(totalRaw)/float64(totalCompressed),
		float64(totalCompressed)*8/elapsed.Seconds()/1e6)
}

// awaitQueryResult reads responses until the query result arrives,
// tolerating interleaved non-result frames (e.g. stray acks from a server
// not running in -noack mode) and reporting read failures as read
// failures — not as a bogus frame kind from a zero-valued message.
func awaitQueryResult(conn net.Conn) (netproto.Message, error) {
	const maxSkipped = 32
	for skipped := 0; skipped <= maxSkipped; skipped++ {
		resp, err := netproto.Read(conn)
		if errors.Is(err, netproto.ErrChecksum) {
			continue // corrupt response frame: keep waiting
		}
		if err != nil {
			return netproto.Message{}, fmt.Errorf("reading query response: %w", err)
		}
		if resp.Kind == netproto.KindQueryResult {
			return resp, nil
		}
		log.Printf("skipping interleaved frame kind %d while waiting for query result", resp.Kind)
	}
	return netproto.Message{}, fmt.Errorf("no query result after %d frames", maxSkipped)
}
