// Command dbgc-client is the client half of the DBGC system (Figure 2): it
// pulls frames from the (simulated) sensor, compresses them, and streams
// the bit sequences to a dbgc-server over TCP.
//
// Usage:
//
//	dbgc-client [-server localhost:7045] [-scene kitti-city] [-frames 10] [-q 0.02] [-rate 10]
package main

import (
	"flag"
	"fmt"
	"log"
	"net"
	"os"
	"time"

	"dbgc"
	"dbgc/internal/lidar"
	"dbgc/internal/netproto"
)

func main() {
	server := flag.String("server", "localhost:7045", "dbgc-server address")
	sceneKind := flag.String("scene", string(lidar.City), "scene preset")
	frames := flag.Int("frames", 10, "number of frames to capture and send")
	q := flag.Float64("q", 0.02, "error bound in meters")
	rate := flag.Float64("rate", 10, "sensor frame rate (frames/second); 0 = as fast as possible")
	queryBox := flag.String("query", "", "after sending, query frame 0 for x0,y0,z0,x1,y1,z1")
	flag.Parse()

	scene, err := lidar.NewScene(lidar.SceneKind(*sceneKind), 1)
	if err != nil {
		log.Fatal(err)
	}
	cfg := lidar.HDL64E()
	opts := dbgc.SensorOptions(*q, cfg.Meta())

	conn, err := net.Dial("tcp", *server)
	if err != nil {
		log.Fatalf("connecting to server: %v", err)
	}
	defer conn.Close()

	var interval time.Duration
	if *rate > 0 {
		interval = time.Duration(float64(time.Second) / *rate)
	}
	var totalRaw, totalCompressed int
	start := time.Now()
	for seq := 0; seq < *frames; seq++ {
		frameStart := time.Now()
		pc := cfg.Simulate(scene, int64(seq+1))
		data, stats, err := dbgc.Compress(pc, opts)
		if err != nil {
			log.Fatalf("compressing frame %d: %v", seq, err)
		}
		if err := netproto.Write(conn, netproto.Message{
			Kind:    netproto.KindCompressed,
			Seq:     uint64(seq),
			Payload: data,
		}); err != nil {
			log.Fatalf("sending frame %d: %v", seq, err)
		}
		totalRaw += pc.RawSize()
		totalCompressed += len(data)
		log.Printf("frame %d: %d points, %d bytes (ratio %.2f), compress %v",
			seq, len(pc), len(data), stats.CompressionRatio(),
			(stats.DEN + stats.OCT + stats.COR + stats.ORG + stats.SPA + stats.OUT).Round(time.Millisecond))
		if interval > 0 {
			if sleep := interval - time.Since(frameStart); sleep > 0 {
				time.Sleep(sleep)
			}
		}
	}
	if *queryBox != "" {
		var b dbgc.AABB
		if _, err := fmt.Sscanf(*queryBox, "%f,%f,%f,%f,%f,%f",
			&b.Min.X, &b.Min.Y, &b.Min.Z, &b.Max.X, &b.Max.Y, &b.Max.Z); err != nil {
			log.Fatalf("bad -query %q: %v", *queryBox, err)
		}
		if err := netproto.Write(conn, netproto.Message{
			Kind:    netproto.KindQuery,
			Payload: netproto.EncodeQuery(netproto.Query{Seq: 0, Box: b}),
		}); err != nil {
			log.Fatalf("sending query: %v", err)
		}
		resp, err := netproto.Read(conn)
		if err != nil || resp.Kind != netproto.KindQueryResult {
			log.Fatalf("query response: kind=%d err=%v", resp.Kind, err)
		}
		fmt.Printf("server returned %d points for frame 0 in box %s\n", len(resp.Payload)/16, *queryBox)
	}
	if err := netproto.Write(conn, netproto.Message{Kind: netproto.KindBye, Seq: uint64(*frames)}); err != nil {
		log.Printf("sending bye: %v", err)
	}
	elapsed := time.Since(start)
	fmt.Fprintf(os.Stdout, "sent %d frames in %v: %d raw bytes -> %d compressed (ratio %.2f), avg bandwidth %.2f Mbps\n",
		*frames, elapsed.Round(time.Millisecond), totalRaw, totalCompressed,
		float64(totalRaw)/float64(totalCompressed),
		float64(totalCompressed)*8/elapsed.Seconds()/1e6)
}
