// Command dbgc-server is the server half of the DBGC system (Figure 2): it
// receives compressed frames from clients over TCP, optionally decompresses
// them, and stores them in a frame store.
//
// Usage:
//
//	dbgc-server [-listen :7045] [-store frames.db] [-decompress]
package main

import (
	"bytes"
	"errors"
	"flag"
	"fmt"
	"io"
	"log"
	"net"

	"dbgc"
	"dbgc/internal/lidar"
	"dbgc/internal/netproto"
	"dbgc/internal/store"
)

func main() {
	listen := flag.String("listen", ":7045", "address to listen on")
	storePath := flag.String("store", "frames.db", "frame store file")
	decompress := flag.Bool("decompress", false, "decompress frames before storing (default stores B directly)")
	flag.Parse()

	st, err := store.Open(*storePath)
	if err != nil {
		log.Fatalf("opening store: %v", err)
	}
	defer st.Close()

	ln, err := net.Listen("tcp", *listen)
	if err != nil {
		log.Fatalf("listen: %v", err)
	}
	log.Printf("dbgc-server listening on %s, storing to %s (decompress=%v)", ln.Addr(), *storePath, *decompress)
	for {
		conn, err := ln.Accept()
		if err != nil {
			log.Printf("accept: %v", err)
			continue
		}
		go func() {
			if err := serve(conn, st, *decompress); err != nil {
				log.Printf("client %s: %v", conn.RemoteAddr(), err)
			}
		}()
	}
}

func serve(conn net.Conn, st *store.Store, decompress bool) error {
	defer conn.Close()
	for {
		msg, err := netproto.Read(conn)
		if errors.Is(err, io.EOF) {
			return nil
		}
		if err != nil {
			return fmt.Errorf("reading frame: %w", err)
		}
		switch msg.Kind {
		case netproto.KindBye:
			return nil
		case netproto.KindCompressed:
			if decompress {
				pc, err := dbgc.Decompress(msg.Payload)
				if err != nil {
					return fmt.Errorf("frame %d: %w", msg.Seq, err)
				}
				raw := encodeRaw(pc)
				if err := st.Put(msg.Seq, store.KindDecompressed, raw); err != nil {
					return err
				}
				log.Printf("frame %d: %d bytes -> %d points, stored decompressed", msg.Seq, len(msg.Payload), len(pc))
			} else {
				if err := st.Put(msg.Seq, store.KindCompressed, msg.Payload); err != nil {
					return err
				}
				log.Printf("frame %d: stored %d compressed bytes", msg.Seq, len(msg.Payload))
			}
		case netproto.KindRaw:
			if err := st.Put(msg.Seq, store.KindDecompressed, msg.Payload); err != nil {
				return err
			}
			log.Printf("frame %d: stored %d raw bytes", msg.Seq, len(msg.Payload))
		case netproto.KindQuery:
			q, err := netproto.DecodeQuery(msg.Payload)
			if err != nil {
				return err
			}
			pts, err := answerQuery(st, q)
			if err != nil {
				log.Printf("query frame %d: %v", q.Seq, err)
				pts = nil
			}
			if err := netproto.Write(conn, netproto.Message{
				Kind: netproto.KindQueryResult, Seq: q.Seq, Payload: encodeRaw(pts),
			}); err != nil {
				return err
			}
			log.Printf("query frame %d: %d points in box", q.Seq, len(pts))
		default:
			return fmt.Errorf("unknown message kind %d", msg.Kind)
		}
	}
}

// answerQuery resolves a spatial query against the store: compressed
// frames use the pruning region decoder; raw frames decode and filter.
func answerQuery(st *store.Store, q netproto.Query) (dbgc.PointCloud, error) {
	payload, kind, err := st.Get(q.Seq)
	if err != nil {
		return nil, err
	}
	switch kind {
	case store.KindCompressed:
		return dbgc.DecompressRegion(payload, q.Box)
	case store.KindDecompressed:
		pc, err := lidar.ReadBin(bytes.NewReader(payload))
		if err != nil {
			return nil, err
		}
		var out dbgc.PointCloud
		for _, p := range pc {
			if q.Box.Contains(p) {
				out = append(out, p)
			}
		}
		return out, nil
	default:
		return nil, fmt.Errorf("unknown stored kind %d", kind)
	}
}

func encodeRaw(pc dbgc.PointCloud) []byte {
	var buf writerBuf
	if err := lidar.WriteBin(&buf, pc); err != nil {
		panic(err) // in-memory write cannot fail
	}
	return buf.b
}

type writerBuf struct{ b []byte }

func (w *writerBuf) Write(p []byte) (int, error) {
	w.b = append(w.b, p...)
	return len(p), nil
}
