// Command dbgc-server is the server half of the DBGC system (Figure 2): it
// receives compressed frames from clients over TCP, optionally decompresses
// them, and stores them in a frame store.
//
// Frames are acknowledged per the reliable transport protocol: a frame is
// acked once stored, nacked (and quarantined) if its payload is corrupt or
// undecodable, and a client disconnect or hostile payload never disturbs
// other connections. SIGINT/SIGTERM drain active sessions before exit.
//
// Usage:
//
//	dbgc-server [-listen :7045] [-store frames.db] [-decompress]
//	            [-partial] [-max-points n] [-mem-budget bytes]
//	            [-fsync off|always|<interval>] [-noack]
//	            [-read-timeout 60s] [-drain-timeout 10s]
package main

import (
	"bytes"
	"context"
	"errors"
	"flag"
	"fmt"
	"log"
	"net"
	"os"
	"os/signal"
	"strings"
	"syscall"
	"time"

	"dbgc"
	"dbgc/internal/lidar"
	"dbgc/internal/netproto"
	"dbgc/internal/reliable"
	"dbgc/internal/store"
)

func main() {
	listen := flag.String("listen", ":7045", "address to listen on")
	storePath := flag.String("store", "frames.db", "frame store file")
	decompress := flag.Bool("decompress", false, "decompress frames before storing (default stores B directly)")
	parallel := flag.Bool("parallel", false, "decode the sections of each frame on separate goroutines (with -decompress)")
	partial := flag.Bool("partial", false, "with -decompress: store the intact sections of damaged frames and quarantine the rest instead of nacking")
	maxPoints := flag.Int64("max-points", dbgc.DefaultDecodeLimits().MaxPoints, "decode limit: maximum points per frame (0 = unlimited)")
	memBudget := flag.Int64("mem-budget", dbgc.DefaultDecodeLimits().MemBudget, "decode limit: decoded-memory budget per frame in bytes (0 = unlimited)")
	fsync := flag.String("fsync", "off", `durability mode: "off" (OS decides), "always" (sync before every ack), or a periodic interval like "500ms"`)
	noack := flag.Bool("noack", false, "legacy fire-and-forget mode: do not send acks/nacks")
	readTimeout := flag.Duration("read-timeout", 60*time.Second, "idle timeout per connection")
	drainTimeout := flag.Duration("drain-timeout", 10*time.Second, "how long to wait for sessions to finish on shutdown")
	flag.Parse()

	syncAlways, syncEvery, err := parseFsync(*fsync)
	if err != nil {
		log.Fatalf("bad -fsync: %v", err)
	}

	st, err := store.Open(*storePath)
	if err != nil {
		log.Fatalf("opening store: %v", err)
	}
	defer st.Close()

	ln, err := net.Listen("tcp", *listen)
	if err != nil {
		log.Fatalf("listen: %v", err)
	}

	limits := dbgc.DecodeLimits{MaxPoints: *maxPoints, MemBudget: *memBudget}
	srv := reliable.NewServer(reliable.ServerConfig{
		Handle:      handler(st, *decompress, *parallel, *partial, syncAlways, limits),
		Query:       querier(st),
		Quarantine:  quarantiner(st),
		ReadTimeout: *readTimeout,
		NoAck:       *noack,
		Logf:        log.Printf,
	})

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	if syncEvery > 0 {
		go func() {
			tick := time.NewTicker(syncEvery)
			defer tick.Stop()
			for {
				select {
				case <-tick.C:
					if err := st.Sync(); err != nil {
						log.Printf("periodic fsync: %v", err)
					}
				case <-ctx.Done():
					return
				}
			}
		}()
	}

	log.Printf("dbgc-server listening on %s, storing to %s (decompress=%v, fsync=%s, noack=%v)",
		ln.Addr(), *storePath, *decompress, *fsync, *noack)
	go func() {
		if err := srv.Serve(ln); err != nil && !errors.Is(err, reliable.ErrServerClosed) {
			log.Printf("serve: %v", err)
			stop()
		}
	}()

	<-ctx.Done()
	log.Printf("signal received, draining sessions (up to %v)", *drainTimeout)
	sctx, cancel := context.WithTimeout(context.Background(), *drainTimeout)
	defer cancel()
	if err := srv.Shutdown(sctx); err != nil {
		log.Printf("shutdown: %v (remaining connections closed)", err)
	}
	if err := st.Sync(); err != nil {
		log.Printf("final fsync: %v", err)
	}
	log.Printf("drained; %d frames stored", st.Len())
}

// parseFsync maps the -fsync flag onto (sync before every ack, periodic
// interval).
func parseFsync(mode string) (always bool, every time.Duration, err error) {
	switch mode {
	case "", "off":
		return false, 0, nil
	case "always":
		return true, 0, nil
	default:
		d, err := time.ParseDuration(mode)
		if err != nil || d <= 0 {
			return false, 0, fmt.Errorf("want off, always, or a positive duration, got %q", mode)
		}
		return false, d, nil
	}
}

// handler stores one data frame, decompressing first when asked. Decode
// failures are reported as ErrBadFrame so the session quarantines the
// payload; store failures are plain errors (nacked, retried, not
// quarantined). In partial mode a frame with some damaged sections stores
// what decoded and reports a PartialFrameError so the session quarantines
// only the damaged bytes and still acks.
func handler(st *store.Store, decompress, parallel, partial, syncAlways bool, limits dbgc.DecodeLimits) func(m netproto.Message) error {
	opts := dbgc.DecompressOptions{Parallel: parallel, Limits: limits}
	return func(m netproto.Message) error {
		switch m.Kind {
		case netproto.KindCompressed:
			if decompress && partial {
				pc, reports, err := dbgc.DecompressPartial(m.Payload, opts)
				if err != nil {
					return fmt.Errorf("%w: frame %d: %v", reliable.ErrBadFrame, m.Seq, err)
				}
				var damaged []byte
				var reasons []string
				for _, rep := range reports {
					if rep.Err != nil {
						damaged = append(damaged, rep.Raw...)
						reasons = append(reasons, fmt.Sprintf("%s: %v", rep.Section, rep.Err))
					}
				}
				if err := st.Put(m.Seq, store.KindDecompressed, encodeRaw(pc)); err != nil {
					return err
				}
				if len(reasons) == 0 {
					log.Printf("frame %d: %d bytes -> %d points, stored decompressed", m.Seq, len(m.Payload), len(pc))
					break
				}
				log.Printf("frame %d: partial recovery, stored %d points", m.Seq, len(pc))
				if syncAlways {
					if err := st.Sync(); err != nil {
						return err
					}
				}
				return &reliable.PartialFrameError{Reason: strings.Join(reasons, "; "), Damaged: damaged}
			} else if decompress {
				pc, err := dbgc.DecompressWith(m.Payload, opts)
				if err != nil {
					return fmt.Errorf("%w: frame %d: %v", reliable.ErrBadFrame, m.Seq, err)
				}
				if err := st.Put(m.Seq, store.KindDecompressed, encodeRaw(pc)); err != nil {
					return err
				}
				log.Printf("frame %d: %d bytes -> %d points, stored decompressed", m.Seq, len(m.Payload), len(pc))
			} else {
				if err := st.Put(m.Seq, store.KindCompressed, m.Payload); err != nil {
					return err
				}
				log.Printf("frame %d: stored %d compressed bytes", m.Seq, len(m.Payload))
			}
		case netproto.KindRaw:
			if err := st.Put(m.Seq, store.KindDecompressed, m.Payload); err != nil {
				return err
			}
			log.Printf("frame %d: stored %d raw bytes", m.Seq, len(m.Payload))
		default:
			return fmt.Errorf("%w: unexpected kind %d", reliable.ErrBadFrame, m.Kind)
		}
		if syncAlways {
			return st.Sync()
		}
		return nil
	}
}

// querier answers spatial queries from the store.
func querier(st *store.Store) func(q netproto.Query) ([]byte, error) {
	return func(q netproto.Query) ([]byte, error) {
		pts, err := answerQuery(st, q)
		if err != nil {
			return nil, err
		}
		log.Printf("query frame %d: %d points in box", q.Seq, len(pts))
		return encodeRaw(pts), nil
	}
}

// quarantiner preserves a rejected payload for forensics — unless a good
// record for that sequence number already exists (a corrupt retransmit
// must not shadow a stored frame). Damaged sections of a partially
// recovered frame land under the sequence number with the top bit set, so
// they coexist with the frame's stored good sections.
func quarantiner(st *store.Store) func(m netproto.Message, reason string) {
	return func(m netproto.Message, reason string) {
		if strings.HasPrefix(reason, "partial: ") {
			key := m.Seq | 1<<63
			if err := st.Put(key, store.KindQuarantined, m.Payload); err != nil {
				log.Printf("frame %d: quarantining damaged sections failed: %v", m.Seq, err)
				return
			}
			log.Printf("frame %d: quarantined %d damaged section bytes under key %#x (%s)",
				m.Seq, len(m.Payload), key, reason)
			return
		}
		if kind, ok := st.Kind(m.Seq); ok && kind != store.KindQuarantined {
			return
		}
		if err := st.Put(m.Seq, store.KindQuarantined, m.Payload); err != nil {
			log.Printf("frame %d: quarantine failed: %v", m.Seq, err)
			return
		}
		log.Printf("frame %d: quarantined %d bytes (%s)", m.Seq, len(m.Payload), reason)
	}
}

// answerQuery resolves a spatial query against the store: compressed
// frames use the pruning region decoder; raw frames decode and filter.
func answerQuery(st *store.Store, q netproto.Query) (dbgc.PointCloud, error) {
	payload, kind, err := st.Get(q.Seq)
	if err != nil {
		return nil, err
	}
	switch kind {
	case store.KindCompressed:
		return dbgc.DecompressRegion(payload, q.Box)
	case store.KindDecompressed:
		pc, err := lidar.ReadBin(bytes.NewReader(payload))
		if err != nil {
			return nil, err
		}
		var out dbgc.PointCloud
		for _, p := range pc {
			if q.Box.Contains(p) {
				out = append(out, p)
			}
		}
		return out, nil
	case store.KindQuarantined:
		return nil, fmt.Errorf("frame %d is quarantined", q.Seq)
	default:
		return nil, fmt.Errorf("unknown stored kind %d", kind)
	}
}

func encodeRaw(pc dbgc.PointCloud) []byte {
	var buf writerBuf
	if err := lidar.WriteBin(&buf, pc); err != nil {
		panic(err) // in-memory write cannot fail
	}
	return buf.b
}

type writerBuf struct{ b []byte }

func (w *writerBuf) Write(p []byte) (int, error) {
	w.b = append(w.b, p...)
	return len(p), nil
}
