// Command dbgc-server is the server half of the DBGC system (Figure 2): it
// receives compressed frames from clients over TCP, optionally decompresses
// them, and stores them in a frame store.
//
// Frames are acknowledged per the reliable transport protocol: a frame is
// acked once stored, nacked (and quarantined) if its payload is corrupt or
// undecodable, and a client disconnect or hostile payload never disturbs
// other connections. SIGINT/SIGTERM drain active sessions before exit.
//
// Multi-tenant mode: with -store-dir, each tenant announced by a client
// hello gets its own store shard under the directory (lazily opened, the
// open-file count bounded by -open-stores); admission control (-tenants,
// -max-sessions, -sessions-per-tenant), per-tenant ingest budgets, and
// load shedding (-shed-high/-shed-low) keep one noisy tenant from starving
// the rest. -fsync always batches fsyncs across tenants via group commit:
// every ack still means durable, but concurrent frames share fsync rounds.
//
// Replication (requires -store-dir): -replica-of ADDR runs this node as
// the primary and streams every stored record to the follower listening at
// ADDR; -sync-repl additionally withholds each client ack until the
// follower has the frame durably (quorum of 2). -follower runs this node
// as the follower: it accepts only replication traffic — client hellos and
// frames are refused with a busy hint so multi-address clients rotate to
// the primary — until it is promoted. -promote bumps the replication epoch
// at startup, fencing the deposed primary; restart the surviving follower
// with -promote (keep -follower to fence stray replication from the old
// epoch, drop it to run as a plain server) to take over. /healthz reports
// degraded (HTTP 503) on replication lag over -repl-lag-max, a down
// replication link, or sticky fsync errors.
//
// Usage:
//
//	dbgc-server [-listen :7045] [-store frames.db | -store-dir dir]
//	            [-decompress] [-parallel] [-partial]
//	            [-max-points n] [-mem-budget bytes]
//	            [-fsync off|always|<interval>] [-noack]
//	            [-tenants n] [-max-sessions n] [-sessions-per-tenant n]
//	            [-queue-depth n] [-tenant-budget n] [-open-stores n]
//	            [-shed-high n] [-shed-low n] [-retry-after 200ms]
//	            [-replica-of addr] [-follower] [-promote] [-sync-repl]
//	            [-sync-timeout 5s] [-scrub-interval 1m] [-repl-lag-max n]
//	            [-wm-every n] [-http :7046]
//	            [-read-timeout 60s] [-drain-timeout 10s]
package main

import (
	"bytes"
	"context"
	"errors"
	"flag"
	"fmt"
	"log"
	"net"
	"net/http"
	"os"
	"os/signal"
	"strings"
	"syscall"
	"time"

	"dbgc"
	"dbgc/internal/lidar"
	"dbgc/internal/netproto"
	"dbgc/internal/ops"
	"dbgc/internal/reliable"
	"dbgc/internal/replica"
	"dbgc/internal/store"
)

func main() {
	listen := flag.String("listen", ":7045", "address to listen on")
	storePath := flag.String("store", "frames.db", "frame store file (single-store mode; ignored with -store-dir)")
	storeDir := flag.String("store-dir", "", "store directory for multi-tenant mode: one shard per tenant")
	openStores := flag.Int("open-stores", 64, "with -store-dir: max concurrently open shard files (LRU-evicted)")
	decompress := flag.Bool("decompress", false, "decompress frames before storing (default stores B directly)")
	parallel := flag.Bool("parallel", false, "decode the sections of each frame on separate goroutines (with -decompress)")
	partial := flag.Bool("partial", false, "with -decompress: store the intact sections of damaged frames and quarantine the rest instead of nacking")
	maxPoints := flag.Int64("max-points", dbgc.DefaultDecodeLimits().MaxPoints, "decode limit: maximum points per frame (0 = unlimited)")
	memBudget := flag.Int64("mem-budget", dbgc.DefaultDecodeLimits().MemBudget, "decode limit: decoded-memory budget per frame in bytes (0 = unlimited)")
	fsync := flag.String("fsync", "off", `durability mode: "off" (OS decides), "always" (group-committed sync before every ack), or a periodic interval like "500ms"`)
	noack := flag.Bool("noack", false, "legacy fire-and-forget mode: do not send acks/nacks")
	maxTenants := flag.Int("tenants", 0, "max concurrently active tenants (0 = unlimited)")
	maxSessions := flag.Int("max-sessions", 0, "max concurrent connections server-wide (0 = unlimited)")
	sessionsPerTenant := flag.Int("sessions-per-tenant", 0, "max concurrent sessions per tenant (0 = unlimited)")
	queueDepth := flag.Int("queue-depth", 16, "per-session ingest queue depth before busy nacks")
	tenantBudget := flag.Int("tenant-budget", 64, "per-tenant in-flight frame budget across all its sessions")
	shedHigh := flag.Int("shed-high", 0, "total in-flight frames above which the newest tenants are shed (0 = off)")
	shedLow := flag.Int("shed-low", 0, "in-flight level at which shed tenants are readmitted (default shed-high/2)")
	retryAfter := flag.Duration("retry-after", 200*time.Millisecond, "retry hint attached to busy nacks")
	stallTimeout := flag.Duration("stall-timeout", 0, "cut sessions that stay backpressured this long without draining (0 = never)")
	replicaOf := flag.String("replica-of", "", "run as primary, replicating every stored record to the follower at this address (requires -store-dir)")
	followerMode := flag.Bool("follower", false, "run as follower: accept replication, refuse client traffic until promoted (requires -store-dir)")
	promote := flag.Bool("promote", false, "bump the replication epoch at startup (failover: fences the deposed primary)")
	syncRepl := flag.Bool("sync-repl", false, "with -replica-of: withhold client acks until the follower has each frame durably (quorum 2)")
	syncTimeout := flag.Duration("sync-timeout", 5*time.Second, "with -sync-repl: nack a frame if the follower ack takes longer than this")
	scrubInterval := flag.Duration("scrub-interval", time.Minute, "with -replica-of: anti-entropy scrub period (0 = off)")
	replLagMax := flag.Int64("repl-lag-max", 32<<20, "with -replica-of: /healthz degrades when replication lag exceeds this many bytes")
	wmEvery := flag.Int("wm-every", 32, "with -follower: persist watermarks every this many applied records")
	httpAddr := flag.String("http", "", "serve /healthz and /metrics on this address (empty = disabled)")
	readTimeout := flag.Duration("read-timeout", 60*time.Second, "idle timeout per connection")
	drainTimeout := flag.Duration("drain-timeout", 10*time.Second, "how long to wait for sessions to finish on shutdown")
	flag.Parse()

	syncAlways, syncEvery, err := parseFsync(*fsync)
	if err != nil {
		log.Fatalf("bad -fsync: %v", err)
	}

	stg, err := openStorage(*storeDir, *storePath, *openStores)
	if err != nil {
		log.Fatalf("opening storage: %v", err)
	}
	defer stg.Close()

	// One commit group batches fsyncs across every tenant shard: "always"
	// blocks each frame on its group round (ack ⇒ durable), an interval
	// makes rounds periodic, off disables the group entirely.
	var group *store.Group
	if syncAlways || syncEvery > 0 {
		group = store.NewGroup(syncEvery)
		defer group.Close()
	}

	// Replication roles. Promotion happens before anything serves: the
	// epoch bump must be durable before the first client frame is acked.
	if (*replicaOf != "" || *followerMode || *promote) && stg.shards == nil {
		log.Fatalf("replication flags (-replica-of/-follower/-promote) require -store-dir")
	}
	if *replicaOf != "" && *followerMode {
		log.Fatalf("-replica-of and -follower are mutually exclusive")
	}
	if *promote && !*followerMode {
		epoch, err := replica.Promote(stg.shards.Dir())
		if err != nil {
			log.Fatalf("promote: %v", err)
		}
		log.Printf("promoted: replication epoch now %d", epoch)
	}
	var receiver *replica.Receiver
	var sender *replica.Sender
	if *followerMode {
		receiver, err = replica.NewReceiver(stg.shards, group, *wmEvery)
		if err != nil {
			log.Fatalf("follower setup: %v", err)
		}
		defer receiver.Close()
		if *promote {
			// Promote through the live receiver so the client-refusal
			// gate drops too — a bare on-disk epoch bump would leave the
			// node serving nobody.
			epoch, err := receiver.Promote()
			if err != nil {
				log.Fatalf("promote: %v", err)
			}
			log.Printf("promoted: replication epoch now %d", epoch)
		}
	}
	if *replicaOf != "" {
		meta, err := replica.LoadMeta(stg.shards.Dir())
		if err != nil {
			log.Fatalf("loading replication meta: %v", err)
		}
		sender, err = replica.NewSender(replica.SenderConfig{
			Shards: stg.shards,
			Addr:   *replicaOf,
			DialTo: func(addr string) (net.Conn, error) {
				return net.DialTimeout("tcp", addr, 5*time.Second)
			},
			Epoch:         meta.Epoch,
			ScrubInterval: *scrubInterval,
			Logf:          log.Printf,
		})
		if err != nil {
			log.Fatalf("replication sender: %v", err)
		}
		go sender.Run()
		log.Printf("replicating to %s (epoch %d, sync=%v)", *replicaOf, meta.Epoch, *syncRepl)
	}
	var repl *replLink
	if sender != nil {
		repl = &replLink{sender: sender, syncMode: *syncRepl, timeout: *syncTimeout}
	}

	ln, err := net.Listen("tcp", *listen)
	if err != nil {
		log.Fatalf("listen: %v", err)
	}

	limits := dbgc.DecodeLimits{MaxPoints: *maxPoints, MemBudget: *memBudget}
	cfg := reliable.ServerConfig{
		Handle:               handler(stg, group, *decompress, *parallel, *partial, syncAlways, limits, repl),
		Query:                querier(stg),
		Quarantine:           quarantiner(stg),
		ReadTimeout:          *readTimeout,
		NoAck:                *noack,
		MaxSessions:          *maxSessions,
		MaxTenants:           *maxTenants,
		MaxSessionsPerTenant: *sessionsPerTenant,
		QueueDepth:           *queueDepth,
		TenantBudget:         *tenantBudget,
		RetryAfter:           *retryAfter,
		StallTimeout:         *stallTimeout,
		ShedHighWater:        *shedHigh,
		ShedLowWater:         *shedLow,
		Logf:                 log.Printf,
	}
	if receiver != nil {
		cfg.ReplHello = receiver.HandleHello
		cfg.ReplRecord = receiver.HandleRecord
		cfg.NotReady = receiver.NotReady
	}
	srv := reliable.NewServer(cfg)
	if group != nil {
		// Sticky fsync failures surface in both /metrics and /healthz.
		group.OnError = func(error) { srv.Metrics().StoreSyncErrors.Add(1) }
	}

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	var httpSrv *http.Server
	if *httpAddr != "" {
		httpSrv = opsServer(*httpAddr, srv, stg, group, sender, receiver, *replLagMax)
		go func() {
			if err := httpSrv.ListenAndServe(); err != nil && !errors.Is(err, http.ErrServerClosed) {
				log.Printf("http: %v", err)
			}
		}()
		log.Printf("ops endpoint on http://%s (/healthz, /metrics)", *httpAddr)
	}

	log.Printf("dbgc-server listening on %s, storage %s (decompress=%v, fsync=%s, noack=%v)",
		ln.Addr(), stg, *decompress, *fsync, *noack)
	go func() {
		if err := srv.Serve(ln); err != nil && !errors.Is(err, reliable.ErrServerClosed) {
			log.Printf("serve: %v", err)
			stop()
		}
	}()

	<-ctx.Done()
	log.Printf("signal received, draining sessions (up to %v)", *drainTimeout)
	sctx, cancel := context.WithTimeout(context.Background(), *drainTimeout)
	defer cancel()
	if err := srv.Shutdown(sctx); err != nil {
		log.Printf("shutdown: %v (remaining connections closed)", err)
	}
	if httpSrv != nil {
		httpSrv.Close()
	}
	if sender != nil {
		sender.Stop()
		sender.Wait()
	}
	if group != nil {
		if err := group.Close(); err != nil {
			log.Printf("final group commit: %v", err)
		}
	}
	if err := stg.Sync(); err != nil {
		log.Printf("final fsync: %v", err)
	}
	log.Printf("drained; %s", stg.Summary())
}

// parseFsync maps the -fsync flag onto (sync before every ack, periodic
// interval).
func parseFsync(mode string) (always bool, every time.Duration, err error) {
	switch mode {
	case "", "off":
		return false, 0, nil
	case "always":
		return true, 0, nil
	default:
		d, err := time.ParseDuration(mode)
		if err != nil || d <= 0 {
			return false, 0, fmt.Errorf("want off, always, or a positive duration, got %q", mode)
		}
		return false, d, nil
	}
}

// storage routes tenants to stores: either everything into one legacy
// store file, or one shard per tenant under a directory.
type storage struct {
	single *store.Store
	shards *store.Shards
	desc   string
}

func openStorage(dir, path string, openStores int) (*storage, error) {
	if dir != "" {
		sh, err := store.OpenShards(dir, openStores)
		if err != nil {
			return nil, err
		}
		return &storage{shards: sh, desc: "dir " + dir}, nil
	}
	st, err := store.Open(path)
	if err != nil {
		return nil, err
	}
	return &storage{single: st, desc: "file " + path}, nil
}

func (s *storage) String() string { return s.desc }

// acquire pins the tenant's store for the duration of one operation; the
// returned release must be called (it unpins the shard for LRU eviction).
func (s *storage) acquire(tenant string) (*store.Store, func(), error) {
	if s.shards != nil {
		st, err := s.shards.Acquire(tenant)
		if err != nil {
			return nil, nil, err
		}
		return st, func() { s.shards.Release(tenant) }, nil
	}
	return s.single, func() {}, nil
}

func (s *storage) Sync() error {
	if s.shards != nil {
		return s.shards.SyncAll()
	}
	return s.single.Sync()
}

func (s *storage) Close() error {
	if s.shards != nil {
		return s.shards.Close()
	}
	return s.single.Close()
}

// Summary describes the end state for the shutdown log line.
func (s *storage) Summary() string {
	if s.shards != nil {
		tenants, err := s.shards.Tenants()
		if err != nil {
			return fmt.Sprintf("shard summary unavailable: %v", err)
		}
		return fmt.Sprintf("%d tenant shards on disk, %d open", len(tenants), s.shards.OpenCount())
	}
	return fmt.Sprintf("%d frames stored", s.single.Len())
}

// replLink carries the replication sender into the frame handler: every
// stored frame kicks the ship loop, and in sync mode the ack is withheld
// until the follower confirms durability.
type replLink struct {
	sender   *replica.Sender
	syncMode bool
	timeout  time.Duration
}

// gate finishes one frame's replication obligations after local commit.
func (r *replLink) gate(tenant string, end int64) error {
	if r == nil {
		return nil
	}
	r.sender.Kick()
	if !r.syncMode {
		return nil
	}
	if err := r.sender.WaitDurable(tenant, end, r.timeout); err != nil {
		// Nack: the client retransmits, and the retry waits again. The
		// frame is locally durable but unconfirmed on the follower — in
		// sync mode that is not yet an ackable state.
		return fmt.Errorf("sync replication: %w", err)
	}
	return nil
}

// opsServer exposes /healthz and /metrics for monitoring and the load
// harness. Health degrades (HTTP 503) on sticky fsync errors, a down
// replication link, a fenced (deposed) primary, or replication lag over
// lagMax bytes.
func opsServer(addr string, srv *reliable.Server, stg *storage, group *store.Group,
	sender *replica.Sender, receiver *replica.Receiver, lagMax int64) *http.Server {
	health := &ops.Health{}
	if group != nil {
		health.Add("store", func() (string, bool) {
			if err := group.Err(); err != nil {
				return fmt.Sprintf("fsync failing (%d rounds): %v", group.ErrCount(), err), false
			}
			return "", true
		})
	}
	if sender != nil {
		health.Add("replication", func() (string, bool) {
			st := sender.Stats()
			switch {
			case st.Fenced:
				return "fenced by promoted follower", false
			case !st.LinkUp:
				return "link down", false
			case lagMax > 0 && st.LagBytes > lagMax:
				return fmt.Sprintf("lag %d bytes exceeds %d", st.LagBytes, lagMax), false
			}
			return fmt.Sprintf("lag %d bytes", st.LagBytes), true
		})
	}
	if receiver != nil {
		health.Add("role", func() (string, bool) {
			if receiver.Promoted() {
				return "primary (promoted)", true
			}
			return "follower", true
		})
	}
	metrics := func() any {
		out := struct {
			reliable.MetricsSnapshot
			OpenShards int                    `json:"open_shards,omitempty"`
			Storage    string                 `json:"storage"`
			Repl       *replica.SenderStats   `json:"repl_sender,omitempty"`
			Follower   *replica.ReceiverStats `json:"repl_receiver,omitempty"`
		}{MetricsSnapshot: srv.Metrics().Snapshot(), Storage: stg.String()}
		if stg.shards != nil {
			out.OpenShards = stg.shards.OpenCount()
		}
		if sender != nil {
			st := sender.Stats()
			out.Repl = &st
		}
		if receiver != nil {
			st := receiver.Stats()
			out.Follower = &st
		}
		return out
	}
	return ops.NewServer(addr, health, metrics)
}

// commit makes one frame durable according to the fsync mode: group-commit
// (blocking) for always, dirty-mark for interval mode, nothing when off.
func commit(group *store.Group, st *store.Store, always bool) error {
	switch {
	case group == nil:
		return nil
	case always:
		return group.Commit(st)
	default:
		group.Async(st)
		return nil
	}
}

// handler stores one data frame in its tenant's shard, decompressing first
// when asked. Decode failures are reported as ErrBadFrame so the session
// quarantines the payload; store failures are plain errors (nacked,
// retried, not quarantined). In partial mode a frame with some damaged
// sections stores what decoded and reports a PartialFrameError so the
// session quarantines only the damaged bytes and still acks.
func handler(stg *storage, group *store.Group, decompress, parallel, partial, syncAlways bool, limits dbgc.DecodeLimits, repl *replLink) func(tenant string, m netproto.Message) error {
	opts := dbgc.DecompressOptions{Parallel: parallel, Limits: limits}
	return func(tenant string, m netproto.Message) error {
		st, release, err := stg.acquire(tenant)
		if err != nil {
			return fmt.Errorf("tenant %s store: %w", tenant, err)
		}
		defer release()
		var end int64
		switch m.Kind {
		case netproto.KindCompressed:
			if decompress && partial {
				pc, reports, err := dbgc.DecompressPartial(m.Payload, opts)
				if err != nil {
					return fmt.Errorf("%w: frame %d: %v", reliable.ErrBadFrame, m.Seq, err)
				}
				var damaged []byte
				var reasons []string
				for _, rep := range reports {
					if rep.Err != nil {
						damaged = append(damaged, rep.Raw...)
						reasons = append(reasons, fmt.Sprintf("%s: %v", rep.Section, rep.Err))
					}
				}
				if end, err = st.Append(m.Seq, store.KindDecompressed, encodeRaw(pc)); err != nil {
					return err
				}
				if len(reasons) == 0 {
					log.Printf("%s frame %d: %d bytes -> %d points, stored decompressed", tenant, m.Seq, len(m.Payload), len(pc))
					break
				}
				log.Printf("%s frame %d: partial recovery, stored %d points", tenant, m.Seq, len(pc))
				if err := commit(group, st, syncAlways); err != nil {
					return err
				}
				if err := repl.gate(tenant, end); err != nil {
					return err
				}
				return &reliable.PartialFrameError{Reason: strings.Join(reasons, "; "), Damaged: damaged}
			} else if decompress {
				pc, err := dbgc.DecompressWith(m.Payload, opts)
				if err != nil {
					return fmt.Errorf("%w: frame %d: %v", reliable.ErrBadFrame, m.Seq, err)
				}
				if end, err = st.Append(m.Seq, store.KindDecompressed, encodeRaw(pc)); err != nil {
					return err
				}
				log.Printf("%s frame %d: %d bytes -> %d points, stored decompressed", tenant, m.Seq, len(m.Payload), len(pc))
			} else {
				if end, err = st.Append(m.Seq, store.KindCompressed, m.Payload); err != nil {
					return err
				}
				log.Printf("%s frame %d: stored %d compressed bytes", tenant, m.Seq, len(m.Payload))
			}
		case netproto.KindRaw:
			if end, err = st.Append(m.Seq, store.KindDecompressed, m.Payload); err != nil {
				return err
			}
			log.Printf("%s frame %d: stored %d raw bytes", tenant, m.Seq, len(m.Payload))
		default:
			return fmt.Errorf("%w: unexpected kind %d", reliable.ErrBadFrame, m.Kind)
		}
		if err := commit(group, st, syncAlways); err != nil {
			return err
		}
		// Local durability first, then the replication gate: a sync-mode
		// ack proves the frame is on both nodes' disks.
		return repl.gate(tenant, end)
	}
}

// querier answers spatial queries from the tenant's shard.
func querier(stg *storage) func(tenant string, q netproto.Query) ([]byte, error) {
	return func(tenant string, q netproto.Query) ([]byte, error) {
		st, release, err := stg.acquire(tenant)
		if err != nil {
			return nil, err
		}
		defer release()
		pts, err := answerQuery(st, q)
		if err != nil {
			return nil, err
		}
		log.Printf("%s query frame %d: %d points in box", tenant, q.Seq, len(pts))
		return encodeRaw(pts), nil
	}
}

// quarantiner preserves a rejected payload for forensics — unless a good
// record for that sequence number already exists (a corrupt retransmit
// must not shadow a stored frame). Damaged sections of a partially
// recovered frame land under the sequence number with the top bit set, so
// they coexist with the frame's stored good sections.
func quarantiner(stg *storage) func(tenant string, m netproto.Message, reason string) {
	return func(tenant string, m netproto.Message, reason string) {
		st, release, err := stg.acquire(tenant)
		if err != nil {
			log.Printf("%s frame %d: quarantine store unavailable: %v", tenant, m.Seq, err)
			return
		}
		defer release()
		if strings.HasPrefix(reason, "partial: ") {
			key := m.Seq | 1<<63
			if err := st.Put(key, store.KindQuarantined, m.Payload); err != nil {
				log.Printf("%s frame %d: quarantining damaged sections failed: %v", tenant, m.Seq, err)
				return
			}
			log.Printf("%s frame %d: quarantined %d damaged section bytes under key %#x (%s)",
				tenant, m.Seq, len(m.Payload), key, reason)
			return
		}
		if kind, ok := st.Kind(m.Seq); ok && kind != store.KindQuarantined {
			return
		}
		if err := st.Put(m.Seq, store.KindQuarantined, m.Payload); err != nil {
			log.Printf("%s frame %d: quarantine failed: %v", tenant, m.Seq, err)
			return
		}
		log.Printf("%s frame %d: quarantined %d bytes (%s)", tenant, m.Seq, len(m.Payload), reason)
	}
}

// answerQuery resolves a spatial query against the store: compressed
// frames use the pruning region decoder; raw frames decode and filter.
func answerQuery(st *store.Store, q netproto.Query) (dbgc.PointCloud, error) {
	payload, kind, err := st.Get(q.Seq)
	if err != nil {
		return nil, err
	}
	switch kind {
	case store.KindCompressed:
		return dbgc.DecompressRegion(payload, q.Box)
	case store.KindDecompressed:
		pc, err := lidar.ReadBin(bytes.NewReader(payload))
		if err != nil {
			return nil, err
		}
		var out dbgc.PointCloud
		for _, p := range pc {
			if q.Box.Contains(p) {
				out = append(out, p)
			}
		}
		return out, nil
	case store.KindQuarantined:
		return nil, fmt.Errorf("frame %d is quarantined", q.Seq)
	default:
		return nil, fmt.Errorf("unknown stored kind %d", kind)
	}
}

func encodeRaw(pc dbgc.PointCloud) []byte {
	var buf writerBuf
	if err := lidar.WriteBin(&buf, pc); err != nil {
		panic(err) // in-memory write cannot fail
	}
	return buf.b
}

type writerBuf struct{ b []byte }

func (w *writerBuf) Write(p []byte) (int, error) {
	w.b = append(w.b, p...)
	return len(p), nil
}
