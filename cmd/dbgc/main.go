// Command dbgc compresses and decompresses LiDAR point cloud frames with
// the DBGC scheme.
//
// Usage:
//
//	dbgc compress   [-q 0.02] [-groups 3] input.bin output.dbgc
//	dbgc decompress input.dbgc output.bin
//	dbgc info       input.dbgc
//	dbgc simulate   [-scene kitti-city] [-seed 1] output.bin
//	dbgc pack       [-q 0.02] [-intensity] frames... output.dbgs
//	dbgc unpack     input.dbgs output-dir
//
// Frames use the KITTI .bin layout (little-endian float32 records of
// x, y, z, intensity) or PLY when the file name ends in .ply.
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"dbgc"
	"dbgc/internal/core"
	"dbgc/internal/lidar"
)

func main() {
	if len(os.Args) < 2 {
		usage()
	}
	var err error
	switch os.Args[1] {
	case "compress":
		err = runCompress(os.Args[2:])
	case "decompress":
		err = runDecompress(os.Args[2:])
	case "info":
		err = runInfo(os.Args[2:])
	case "simulate":
		err = runSimulate(os.Args[2:])
	case "pack":
		err = runPack(os.Args[2:])
	case "unpack":
		err = runUnpack(os.Args[2:])
	case "view":
		err = runView(os.Args[2:])
	case "query":
		err = runQuery(os.Args[2:])
	default:
		usage()
	}
	if err != nil {
		fmt.Fprintln(os.Stderr, "dbgc:", err)
		os.Exit(1)
	}
}

func usage() {
	fmt.Fprintln(os.Stderr, `usage:
  dbgc compress   [-q meters] [-groups n] [-exact] [-shards n] [-blockpack|-blockpack-force] [-ctx] [-parallel] input.bin output.dbgc
  dbgc decompress [-parallel] input.dbgc output.bin
  dbgc info       input.dbgc
  dbgc simulate   [-scene kind] [-seed n] output.bin
  dbgc pack       [-q meters] [-fps n] [-intensity] [-shards n] [-blockpack] [-ctx] frames... output.dbgs
  dbgc unpack     input.dbgs output-dir
  dbgc view       [-extent m] [-size WxH] frame.bin|frame.ply|frame.dbgc
  dbgc query      -box x0,y0,z0,x1,y1,z1 frame.dbgc output.bin`)
	os.Exit(2)
}

func runCompress(args []string) error {
	fs := flag.NewFlagSet("compress", flag.ExitOnError)
	q := fs.Float64("q", 0.02, "per-dimension error bound in meters")
	groups := fs.Int("groups", 6, "radial point groups")
	exact := fs.Bool("exact", false, "use exact cell-based clustering")
	shards := fs.Int("shards", 1, "entropy shard count (>1 writes the v3 container)")
	blockpack := fs.Bool("blockpack", false, "block-bitpack the integer streams when it shrinks the frame (v4 container, size-guarded)")
	blockpackForce := fs.Bool("blockpack-force", false, "always write the v4 container, skipping the blockpack size guard")
	ctx := fs.Bool("ctx", false, "context-model the occupancy and angular streams when it shrinks each stream (v5 container, size-guarded)")
	parallel := fs.Bool("parallel", false, "compress stages and shards concurrently")
	fs.Parse(args)
	if fs.NArg() != 2 {
		usage()
	}
	pc, err := readCloud(fs.Arg(0))
	if err != nil {
		return err
	}
	opts := dbgc.DefaultOptions(*q)
	opts.Groups = *groups
	opts.ExactClustering = *exact
	opts.Shards = *shards
	opts.BlockPack = *blockpack
	opts.BlockPackForce = *blockpackForce
	opts.ContextModel = *ctx
	opts.Parallel = *parallel
	data, stats, err := dbgc.Compress(pc, opts)
	if err != nil {
		return err
	}
	if err := os.WriteFile(fs.Arg(1), data, 0o644); err != nil {
		return err
	}
	fmt.Printf("%d points -> %d bytes (ratio %.2f)\n", len(pc), len(data), stats.CompressionRatio())
	fmt.Printf("dense %d, sparse %d (%d polylines), outliers %d\n",
		stats.NumDense, stats.NumSparse, stats.NumLines, stats.NumOutliers)
	return nil
}

func runDecompress(args []string) error {
	fs := flag.NewFlagSet("decompress", flag.ExitOnError)
	parallel := fs.Bool("parallel", false, "decode sections and entropy shards concurrently")
	fs.Parse(args)
	if fs.NArg() != 2 {
		usage()
	}
	data, err := os.ReadFile(fs.Arg(0))
	if err != nil {
		return err
	}
	pc, err := dbgc.DecompressWith(data, dbgc.DecompressOptions{Parallel: *parallel})
	if err != nil {
		return err
	}
	if err := writeCloud(fs.Arg(1), pc); err != nil {
		return err
	}
	fmt.Printf("decoded %d points\n", len(pc))
	return nil
}

func runQuery(args []string) error {
	fs := flag.NewFlagSet("query", flag.ExitOnError)
	box := fs.String("box", "", "query box as x0,y0,z0,x1,y1,z1 (meters, sensor frame)")
	fs.Parse(args)
	if fs.NArg() != 2 || *box == "" {
		usage()
	}
	var b dbgc.AABB
	if _, err := fmt.Sscanf(*box, "%f,%f,%f,%f,%f,%f",
		&b.Min.X, &b.Min.Y, &b.Min.Z, &b.Max.X, &b.Max.Y, &b.Max.Z); err != nil {
		return fmt.Errorf("bad -box %q: %w", *box, err)
	}
	data, err := os.ReadFile(fs.Arg(0))
	if err != nil {
		return err
	}
	pc, err := dbgc.DecompressRegion(data, b)
	if err != nil {
		return err
	}
	if err := writeCloud(fs.Arg(1), pc); err != nil {
		return err
	}
	fmt.Printf("region query returned %d points\n", len(pc))
	return nil
}

func runView(args []string) error {
	fs := flag.NewFlagSet("view", flag.ExitOnError)
	extent := fs.Float64("extent", 0, "half-width in meters (0 = fit)")
	size := fs.String("size", "100x40", "character grid WxH")
	fs.Parse(args)
	if fs.NArg() != 1 {
		usage()
	}
	var cols, rows int
	if _, err := fmt.Sscanf(*size, "%dx%d", &cols, &rows); err != nil || cols < 2 || rows < 2 {
		return fmt.Errorf("bad -size %q", *size)
	}
	path := fs.Arg(0)
	var pc dbgc.PointCloud
	var err error
	if strings.HasSuffix(path, ".dbgc") {
		data, rerr := os.ReadFile(path)
		if rerr != nil {
			return rerr
		}
		pc, err = dbgc.Decompress(data)
	} else {
		pc, err = readCloud(path)
	}
	if err != nil {
		return err
	}
	fmt.Print(lidar.RenderTopDown(pc, *extent, cols, rows))
	fmt.Printf("%d points, sensor at center, +x up\n", len(pc))
	return nil
}

// readCloud loads a frame, choosing the format by file extension
// (.ply or KITTI .bin).
func readCloud(path string) (dbgc.PointCloud, error) {
	if strings.HasSuffix(path, ".ply") {
		return lidar.ReadPLYFile(path)
	}
	return lidar.ReadBinFile(path)
}

// writeCloud stores a frame, choosing the format by file extension.
func writeCloud(path string, pc dbgc.PointCloud) error {
	if strings.HasSuffix(path, ".ply") {
		return lidar.WritePLYFile(path, pc)
	}
	return lidar.WriteBinFile(path, pc)
}

func runInfo(args []string) error {
	fs := flag.NewFlagSet("info", flag.ExitOnError)
	fs.Parse(args)
	if fs.NArg() != 1 {
		usage()
	}
	data, err := os.ReadFile(fs.Arg(0))
	if err != nil {
		return err
	}
	layout, err := core.Inspect(data)
	if err != nil {
		return err
	}
	pc, err := dbgc.Decompress(data)
	if err != nil {
		return err
	}
	dialect := ""
	if layout.ShardedStreams {
		dialect = ", sharded entropy streams"
	}
	if layout.BlockPacked {
		dialect += ", blockpacked integer streams"
	}
	if layout.ContextModeled {
		dialect += ", context-modeled entropy streams"
	}
	fmt.Printf("%s: %d bytes, %d points, ratio %.2f (format v%d%s)\n",
		fs.Arg(0), len(data), len(pc), float64(len(pc)*12)/float64(len(data)), layout.Version, dialect)
	fmt.Printf("  dense section:   %8d bytes (%d points, octree)\n", layout.BytesDense, layout.PointsDense)
	fmt.Printf("  sparse section:  %8d bytes (%d radial groups, polylines)\n", layout.BytesSparse, layout.Groups)
	fmt.Printf("  outlier section: %8d bytes (%d points, mode %d)\n", layout.BytesOutlier, layout.PointsOutlier, layout.OutlierMode)
	return nil
}

func runSimulate(args []string) error {
	fs := flag.NewFlagSet("simulate", flag.ExitOnError)
	sceneKind := fs.String("scene", string(lidar.City), "scene preset")
	seed := fs.Int64("seed", 1, "layout and capture seed")
	sensor := fs.String("sensor", "hdl64e", "sensor model: hdl64e, hdl32e, vlp16")
	fs.Parse(args)
	if fs.NArg() != 1 {
		usage()
	}
	scene, err := lidar.NewScene(lidar.SceneKind(*sceneKind), *seed)
	if err != nil {
		return err
	}
	var cfg lidar.SensorConfig
	switch *sensor {
	case "hdl64e":
		cfg = lidar.HDL64E()
	case "hdl32e":
		cfg = lidar.HDL32E()
	case "vlp16":
		cfg = lidar.VLP16()
	default:
		return fmt.Errorf("unknown sensor %q", *sensor)
	}
	pc := cfg.Simulate(scene, *seed)
	if err := writeCloud(fs.Arg(0), pc); err != nil {
		return err
	}
	fmt.Printf("simulated %d points (%s, %s, seed %d)\n", len(pc), *sceneKind, *sensor, *seed)
	return nil
}
