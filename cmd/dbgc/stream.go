package main

import (
	"errors"
	"flag"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"sort"
	"strings"

	"dbgc"
	"dbgc/internal/lidar"
	"dbgc/internal/stream"
)

// runPack packs a sequence of .bin frames into a .dbgs stream container.
func runPack(args []string) error {
	fs := flag.NewFlagSet("pack", flag.ExitOnError)
	q := fs.Float64("q", 0.02, "per-dimension error bound in meters")
	fps := fs.Float64("fps", 10, "sensor frame rate recorded in the container")
	withIntensity := fs.Bool("intensity", false, "carry the intensity channel")
	workers := fs.Int("workers", 1, "compress this many frames concurrently")
	shards := fs.Int("shards", 1, "entropy shard count per frame (>1 writes v3 frames)")
	blockpack := fs.Bool("blockpack", false, "block-bitpack the integer streams when it shrinks each frame (v4, size-guarded)")
	ctx := fs.Bool("ctx", false, "context-model the occupancy and angular streams when it shrinks each stream (v5, size-guarded)")
	fs.Parse(args)
	if fs.NArg() < 2 {
		fmt.Fprintln(os.Stderr, "usage: dbgc pack [-q m] [-fps n] [-intensity] [-workers n] [-shards n] [-blockpack] [-ctx] frame1.bin [frame2.bin ...] output.dbgs")
		os.Exit(2)
	}
	inputs := fs.Args()[:fs.NArg()-1]
	outPath := fs.Arg(fs.NArg() - 1)
	// Directories expand to their .bin contents in name order.
	var frames []string
	for _, in := range inputs {
		info, err := os.Stat(in)
		if err != nil {
			return err
		}
		if !info.IsDir() {
			frames = append(frames, in)
			continue
		}
		entries, err := os.ReadDir(in)
		if err != nil {
			return err
		}
		var names []string
		for _, e := range entries {
			if !e.IsDir() && strings.HasSuffix(e.Name(), ".bin") {
				names = append(names, filepath.Join(in, e.Name()))
			}
		}
		sort.Strings(names)
		frames = append(frames, names...)
	}
	if len(frames) == 0 {
		return errors.New("no input frames")
	}

	out, err := os.Create(outPath)
	if err != nil {
		return err
	}
	packOpts := dbgc.DefaultOptions(*q)
	packOpts.Shards = *shards
	packOpts.BlockPack = *blockpack
	packOpts.ContextModel = *ctx
	w, err := stream.NewWriter(out, packOpts, *fps)
	if err != nil {
		out.Close()
		return err
	}
	var rawTotal, compTotal int
	// Definitive per-frame stats arrive via the callback: in pipelined mode
	// WriteFrame returns before compression finishes.
	w.OnStats = func(fstat stream.FrameStats) {
		compTotal += fstat.GeometryBytes + fstat.IntensityBytes
		fmt.Printf("%s: %d points -> %d bytes (ratio %.2f)\n",
			frames[fstat.Seq], fstat.Points, fstat.GeometryBytes, fstat.Ratio)
	}
	if *workers > 1 {
		if err := w.EnablePipeline(*workers); err != nil {
			out.Close()
			return err
		}
	}
	for _, path := range frames {
		f, err := os.Open(path)
		if err != nil {
			return err
		}
		var pc dbgc.PointCloud
		var intens []float32
		if *withIntensity {
			pc, intens, err = lidar.ReadBinWithIntensity(f)
		} else {
			pc, err = lidar.ReadBin(f)
		}
		f.Close()
		if err != nil {
			return fmt.Errorf("%s: %w", path, err)
		}
		if _, err := w.WriteFrame(pc, intens); err != nil {
			return fmt.Errorf("%s: %w", path, err)
		}
		rawTotal += pc.RawSize()
	}
	if err := w.Close(); err != nil {
		out.Close()
		return err
	}
	if err := out.Close(); err != nil {
		return err
	}
	fmt.Printf("packed %d frames: %d -> %d bytes (%.2fx)\n",
		len(frames), rawTotal, compTotal, float64(rawTotal)/float64(compTotal))
	return nil
}

// runUnpack extracts a .dbgs container back into .bin frames.
func runUnpack(args []string) error {
	fs := flag.NewFlagSet("unpack", flag.ExitOnError)
	workers := fs.Int("workers", 1, "decode this many frames concurrently")
	maxPoints := fs.Int64("max-points", 0, "decode limit: maximum points per frame (0 = unlimited)")
	memBudget := fs.Int64("mem-budget", 0, "decode limit: decoded-memory budget per frame in bytes (0 = unlimited)")
	partial := fs.Bool("partial", false, "recover intact sections of damaged frames instead of aborting")
	fs.Parse(args)
	if fs.NArg() != 2 {
		fmt.Fprintln(os.Stderr, "usage: dbgc unpack [-workers n] [-max-points n] [-mem-budget bytes] [-partial] input.dbgs output-dir")
		os.Exit(2)
	}
	if *partial && *workers > 1 {
		return errors.New("-partial is incompatible with -workers > 1")
	}
	in, err := os.Open(fs.Arg(0))
	if err != nil {
		return err
	}
	defer in.Close()
	outDir := fs.Arg(1)
	if err := os.MkdirAll(outDir, 0o755); err != nil {
		return err
	}
	r, err := stream.NewReader(in)
	if err != nil {
		return err
	}
	if *maxPoints > 0 || *memBudget > 0 {
		r.SetLimits(dbgc.DecodeLimits{MaxPoints: *maxPoints, MemBudget: *memBudget})
	}
	if *partial {
		if err := r.EnablePartial(); err != nil {
			return err
		}
	}
	if *workers > 1 {
		if err := r.EnablePipeline(*workers); err != nil {
			return err
		}
	}
	n, damaged := 0, 0
	for {
		fr, err := r.ReadFrame()
		if errors.Is(err, io.EOF) {
			break
		}
		if err != nil {
			return err
		}
		path := filepath.Join(outDir, fmt.Sprintf("%06d.bin", fr.Seq))
		f, err := os.Create(path)
		if err != nil {
			return err
		}
		if err := lidar.WriteBinWithIntensity(f, fr.Cloud, fr.Intensity); err != nil {
			f.Close()
			return err
		}
		if err := f.Close(); err != nil {
			return err
		}
		if fr.Damage != nil {
			damaged++
			fmt.Printf("%s: %d points (damaged: %s)\n", path, len(fr.Cloud), describeDamage(fr.Damage))
		} else {
			fmt.Printf("%s: %d points\n", path, len(fr.Cloud))
		}
		n++
	}
	if damaged > 0 {
		fmt.Printf("unpacked %d frames, %d damaged (q=%g, fps=%g)\n", n, damaged, r.Q(), r.FPS())
	} else {
		fmt.Printf("unpacked %d frames (q=%g, fps=%g)\n", n, r.Q(), r.FPS())
	}
	return nil
}

// describeDamage renders a FrameDamage for the unpack log.
func describeDamage(d *stream.FrameDamage) string {
	var parts []string
	if d.Err != nil {
		parts = append(parts, d.Err.Error())
	}
	for _, rep := range d.Sections {
		if rep.Err != nil {
			parts = append(parts, fmt.Sprintf("%s section: %v", rep.Section, rep.Err))
		}
	}
	if d.CRCMismatch && len(parts) == 0 {
		parts = append(parts, "frame checksum mismatch")
	}
	if d.AttrErr != nil {
		parts = append(parts, fmt.Sprintf("intensity dropped: %v", d.AttrErr))
	}
	return strings.Join(parts, "; ")
}
