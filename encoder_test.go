package dbgc_test

import (
	"bytes"
	"testing"

	"dbgc"
	"dbgc/internal/benchkit"
	"dbgc/internal/lidar"
)

// TestEncoderMatchesCompress: for every outlier mode, serial and parallel,
// the reusable Encoder must be byte-identical and Mapping-identical to the
// one-shot Compress, deterministic across repeated calls on the same
// Encoder, and the decoded cloud must verify against the error bound.
func TestEncoderMatchesCompress(t *testing.T) {
	pc, err := benchkit.Frame(lidar.City, 1)
	if err != nil {
		t.Fatal(err)
	}
	modes := []struct {
		name string
		mode dbgc.OutlierMode
	}{
		{"quadtree", dbgc.OutlierQuadtree},
		{"octree", dbgc.OutlierOctree},
		{"none", dbgc.OutlierNone},
	}
	for _, m := range modes {
		for _, parallel := range []bool{false, true} {
			name := m.name + "/serial"
			if parallel {
				name = m.name + "/parallel"
			}
			t.Run(name, func(t *testing.T) {
				opts := dbgc.DefaultOptions(0.02)
				opts.OutlierMode = m.mode
				opts.Parallel = parallel

				want, wantStats, err := dbgc.Compress(pc, opts)
				if err != nil {
					t.Fatal(err)
				}
				enc := dbgc.NewEncoder(opts)
				// Two rounds on the same Encoder: the second runs on warm
				// scratch and must still be deterministic.
				for round := 0; round < 2; round++ {
					got, stats, err := dbgc.CompressWith(enc, pc)
					if err != nil {
						t.Fatalf("round %d: %v", round, err)
					}
					if !bytes.Equal(want, got) {
						t.Fatalf("round %d: encoder output differs: %d vs %d bytes",
							round, len(got), len(want))
					}
					if len(stats.Mapping) != len(wantStats.Mapping) {
						t.Fatalf("round %d: mapping sizes differ", round)
					}
					for i := range stats.Mapping {
						if stats.Mapping[i] != wantStats.Mapping[i] {
							t.Fatalf("round %d: mapping differs at %d", round, i)
						}
					}
					back, err := dbgc.Decompress(got)
					if err != nil {
						t.Fatalf("round %d: %v", round, err)
					}
					if _, err := dbgc.VerifyErrorBound(pc, back, stats.Mapping, opts.Q); err != nil {
						t.Fatalf("round %d: %v", round, err)
					}
				}
			})
		}
	}
}

// TestSerialParallelDecodeEquivalence: whichever options produced the
// stream, serial and parallel encodes must decode to the same points.
func TestSerialParallelDecodeEquivalence(t *testing.T) {
	pc, err := benchkit.Frame(lidar.Campus, 1)
	if err != nil {
		t.Fatal(err)
	}
	opts := dbgc.DefaultOptions(0.02)
	serialData, _, err := dbgc.Compress(pc, opts)
	if err != nil {
		t.Fatal(err)
	}
	opts.Parallel = true
	parallelData, _, err := dbgc.Compress(pc, opts)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(serialData, parallelData) {
		t.Fatalf("parallel encode differs: %d vs %d bytes", len(parallelData), len(serialData))
	}
	a, err := dbgc.Decompress(serialData)
	if err != nil {
		t.Fatal(err)
	}
	b, err := dbgc.Decompress(parallelData)
	if err != nil {
		t.Fatal(err)
	}
	if len(a) != len(b) {
		t.Fatalf("decoded sizes differ: %d vs %d", len(a), len(b))
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("decoded point %d differs: %v vs %v", i, a[i], b[i])
		}
	}
}

// TestEncoderSteadyStateAllocs bounds the per-frame allocation count of a
// warm Encoder. The bound is loose — the irreducible allocations are the
// returned buffers and per-line slices — but catches any regression back to
// per-frame scratch reallocation, which sat an order of magnitude higher.
func TestEncoderSteadyStateAllocs(t *testing.T) {
	pc, err := benchkit.Frame(lidar.City, 1)
	if err != nil {
		t.Fatal(err)
	}
	enc := dbgc.NewEncoder(dbgc.DefaultOptions(0.02))
	if _, _, err := dbgc.CompressWith(enc, pc); err != nil { // warm the scratch
		t.Fatal(err)
	}
	allocs := testing.AllocsPerRun(2, func() {
		if _, _, err := dbgc.CompressWith(enc, pc); err != nil {
			t.Error(err)
		}
	})
	t.Logf("steady-state Encoder.Compress: %.0f allocs/op for %d points", allocs, len(pc))
	const bound = 25000
	if allocs > bound {
		t.Errorf("steady-state Encoder.Compress allocates %.0f times per frame, want <= %d", allocs, bound)
	}
}
