// Benchmarks, one per table and figure of the paper's evaluation (§4).
// Each benchmark drives the same code path the corresponding experiment in
// cmd/dbgc-bench measures, and reports the experiment's headline quantity
// via b.ReportMetric so `go test -bench` output carries the reproduced
// numbers. Full sweeps (all scenes × all error bounds) live in
// cmd/dbgc-bench; benchmarks run one representative configuration each.
package dbgc_test

import (
	"bytes"
	"fmt"
	"runtime"
	"testing"
	"time"

	"dbgc"
	"dbgc/internal/benchkit"
	"dbgc/internal/cluster"
	"dbgc/internal/core"
	"dbgc/internal/lidar"
	"dbgc/internal/octree"
	"dbgc/internal/stream"
)

func cityFrame(b *testing.B) dbgc.PointCloud {
	b.Helper()
	pc, err := benchkit.Frame(lidar.City, 1)
	if err != nil {
		b.Fatal(err)
	}
	return pc
}

// BenchmarkFig3OctreeVsRadius measures Figure 3: octree compression of the
// 20 m concentric subset, the radius at which the paper reports ratio ~22
// and density ~2 points/m³.
func BenchmarkFig3OctreeVsRadius(b *testing.B) {
	pc := cityFrame(b)
	var sub dbgc.PointCloud
	for _, p := range pc {
		if p.Norm() <= 20 {
			sub = append(sub, p)
		}
	}
	b.ReportAllocs()
	b.ResetTimer()
	var ratio float64
	for i := 0; i < b.N; i++ {
		enc, err := octree.Encode(sub, benchkit.DefaultQ)
		if err != nil {
			b.Fatal(err)
		}
		ratio = benchkit.Ratio(len(sub), len(enc.Data))
	}
	b.ReportMetric(ratio, "ratio")
}

// BenchmarkFig9RatioVsErrorBound measures Figure 9's headline cell: DBGC
// on the city scene at the 2 cm bound.
func BenchmarkFig9RatioVsErrorBound(b *testing.B) {
	pc := cityFrame(b)
	b.ReportAllocs()
	b.ResetTimer()
	var ratio float64
	for i := 0; i < b.N; i++ {
		data, stats, err := dbgc.Compress(pc, dbgc.DefaultOptions(benchkit.DefaultQ))
		if err != nil {
			b.Fatal(err)
		}
		_ = data
		ratio = stats.CompressionRatio()
	}
	b.ReportMetric(ratio, "ratio")
}

// BenchmarkFig9Baselines covers the baseline codecs of Figure 9 at 2 cm.
func BenchmarkFig9Baselines(b *testing.B) {
	pc := cityFrame(b)
	for _, codec := range dbgc.Codecs() {
		codec := codec
		b.Run(codec.Name(), func(b *testing.B) {
			b.ReportAllocs()
			var ratio float64
			for i := 0; i < b.N; i++ {
				data, err := codec.Compress(pc, benchkit.DefaultQ)
				if err != nil {
					b.Fatal(err)
				}
				ratio = benchkit.Ratio(len(pc), len(data))
			}
			b.ReportMetric(ratio, "ratio")
		})
	}
}

// BenchmarkFig10OctreeFraction measures Figure 10's 50% manual-split
// point.
func BenchmarkFig10OctreeFraction(b *testing.B) {
	pc := cityFrame(b)
	opts := dbgc.DefaultOptions(benchkit.DefaultQ)
	opts.ForceOctreeFraction = 0.5
	b.ReportAllocs()
	b.ResetTimer()
	var ratio float64
	for i := 0; i < b.N; i++ {
		data, _, err := dbgc.Compress(pc, opts)
		if err != nil {
			b.Fatal(err)
		}
		ratio = benchkit.Ratio(len(pc), len(data))
	}
	b.ReportMetric(ratio, "ratio")
}

// BenchmarkFig11Ablations covers the ablations of Figure 11 on the campus
// scene at 2 cm.
func BenchmarkFig11Ablations(b *testing.B) {
	pc, err := benchkit.Frame(lidar.Campus, 1)
	if err != nil {
		b.Fatal(err)
	}
	variants := map[string]func(*dbgc.Options){
		"Full":        func(o *dbgc.Options) {},
		"-Radial":     func(o *dbgc.Options) { o.DisableRadialOpt = true },
		"-Group":      func(o *dbgc.Options) { o.Groups = 1 },
		"-Conversion": func(o *dbgc.Options) { o.CartesianPolylines = true },
	}
	for name, mod := range variants {
		mod := mod
		b.Run(name, func(b *testing.B) {
			opts := dbgc.DefaultOptions(benchkit.DefaultQ)
			mod(&opts)
			b.ReportAllocs()
			var ratio float64
			for i := 0; i < b.N; i++ {
				data, _, err := dbgc.Compress(pc, opts)
				if err != nil {
					b.Fatal(err)
				}
				ratio = benchkit.Ratio(len(pc), len(data))
			}
			b.ReportMetric(ratio, "ratio")
		})
	}
}

// BenchmarkTable2Outliers covers Table 2's outlier-handling modes on the
// campus scene.
func BenchmarkTable2Outliers(b *testing.B) {
	pc, err := benchkit.Frame(lidar.Campus, 1)
	if err != nil {
		b.Fatal(err)
	}
	modes := map[string]core.OutlierMode{
		"Outlier": core.OutlierQuadtree,
		"Octree":  core.OutlierOctree,
		"None":    core.OutlierNone,
	}
	for name, mode := range modes {
		mode := mode
		b.Run(name, func(b *testing.B) {
			opts := dbgc.DefaultOptions(benchkit.DefaultQ)
			opts.OutlierMode = mode
			b.ReportAllocs()
			var ratio float64
			for i := 0; i < b.N; i++ {
				data, _, err := dbgc.Compress(pc, opts)
				if err != nil {
					b.Fatal(err)
				}
				ratio = benchkit.Ratio(len(pc), len(data))
			}
			b.ReportMetric(ratio, "ratio")
		})
	}
}

// BenchmarkFig12Latency measures Figure 12: compression and decompression
// latency of DBGC on the city scene at 2 cm.
func BenchmarkFig12Latency(b *testing.B) {
	pc := cityFrame(b)
	b.Run("Compress", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			if _, _, err := dbgc.Compress(pc, dbgc.DefaultOptions(benchkit.DefaultQ)); err != nil {
				b.Fatal(err)
			}
		}
	})
	data, _, err := dbgc.Compress(pc, dbgc.DefaultOptions(benchkit.DefaultQ))
	if err != nil {
		b.Fatal(err)
	}
	b.Run("Decompress", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			if _, err := dbgc.Decompress(data); err != nil {
				b.Fatal(err)
			}
		}
	})
}

// BenchmarkDecodeThroughput measures the decode path serially and with the
// parallel section/group decoder, reporting points per second. On a
// single-core host the two should match; the parallel variant scales with
// cores.
func BenchmarkDecodeThroughput(b *testing.B) {
	pc := cityFrame(b)
	data, _, err := dbgc.Compress(pc, dbgc.DefaultOptions(benchkit.DefaultQ))
	if err != nil {
		b.Fatal(err)
	}
	for _, variant := range []struct {
		name string
		opts dbgc.DecompressOptions
	}{
		{"Serial", dbgc.DecompressOptions{}},
		{"Parallel", dbgc.DecompressOptions{Parallel: true}},
	} {
		variant := variant
		b.Run(variant.name, func(b *testing.B) {
			b.ReportAllocs()
			b.ResetTimer()
			start := time.Now()
			for i := 0; i < b.N; i++ {
				if _, err := dbgc.DecompressWith(data, variant.opts); err != nil {
					b.Fatal(err)
				}
			}
			elapsed := time.Since(start).Seconds()
			if elapsed > 0 {
				b.ReportMetric(float64(len(pc)*b.N)/elapsed/1e6, "Mpoints/s")
			}
		})
	}
}

// BenchmarkPipelineFPS measures end-to-end frames per second through the
// stream container, serial vs the framepipe worker pool.
func BenchmarkPipelineFPS(b *testing.B) {
	clouds, err := benchkit.Frames(lidar.City, 2)
	if err != nil {
		b.Fatal(err)
	}
	opts := dbgc.DefaultOptions(benchkit.DefaultQ)
	workerCounts := []int{1}
	if n := runtime.GOMAXPROCS(0); n > 1 {
		workerCounts = append(workerCounts, n)
	}
	for _, workers := range workerCounts {
		workers := workers
		b.Run(fmt.Sprintf("Pack/workers=%d", workers), func(b *testing.B) {
			b.ReportAllocs()
			b.ResetTimer()
			start := time.Now()
			frames := 0
			for i := 0; i < b.N; i++ {
				var buf bytes.Buffer
				w, err := stream.NewWriter(&buf, opts, 10)
				if err != nil {
					b.Fatal(err)
				}
				if workers > 1 {
					if err := w.EnablePipeline(workers); err != nil {
						b.Fatal(err)
					}
				}
				for _, pc := range clouds {
					if _, err := w.WriteFrame(pc, nil); err != nil {
						b.Fatal(err)
					}
					frames++
				}
				if err := w.Close(); err != nil {
					b.Fatal(err)
				}
			}
			if elapsed := time.Since(start).Seconds(); elapsed > 0 {
				b.ReportMetric(float64(frames)/elapsed, "frames/s")
			}
		})
	}
	var container bytes.Buffer
	w, err := stream.NewWriter(&container, opts, 10)
	if err != nil {
		b.Fatal(err)
	}
	for _, pc := range clouds {
		if _, err := w.WriteFrame(pc, nil); err != nil {
			b.Fatal(err)
		}
	}
	if err := w.Close(); err != nil {
		b.Fatal(err)
	}
	for _, workers := range workerCounts {
		workers := workers
		b.Run(fmt.Sprintf("Read/workers=%d", workers), func(b *testing.B) {
			b.ReportAllocs()
			b.ResetTimer()
			start := time.Now()
			frames := 0
			for i := 0; i < b.N; i++ {
				r, err := stream.NewReader(bytes.NewReader(container.Bytes()))
				if err != nil {
					b.Fatal(err)
				}
				if workers > 1 {
					if err := r.EnablePipeline(workers); err != nil {
						b.Fatal(err)
					}
				}
				for range clouds {
					if _, err := r.ReadFrame(); err != nil {
						b.Fatal(err)
					}
					frames++
				}
			}
			if elapsed := time.Since(start).Seconds(); elapsed > 0 {
				b.ReportMetric(float64(frames)/elapsed, "frames/s")
			}
		})
	}
}

// BenchmarkFig13Breakdown exercises the staged pipeline that Figure 13
// decomposes; stage shares are printed by `dbgc-bench -exp fig13`.
func BenchmarkFig13Breakdown(b *testing.B) {
	pc := cityFrame(b)
	b.ReportAllocs()
	var spaShare float64
	for i := 0; i < b.N; i++ {
		_, stats, err := dbgc.Compress(pc, dbgc.DefaultOptions(benchkit.DefaultQ))
		if err != nil {
			b.Fatal(err)
		}
		total := stats.DEN + stats.OCT + stats.COR + stats.ORG + stats.SPA + stats.OUT
		if total > 0 {
			spaShare = float64(stats.SPA) / float64(total)
		}
	}
	b.ReportMetric(spaShare*100, "SPA-%")
}

// BenchmarkClusteringApproxSpeedup compares the exact and approximate
// clustering of §4.3.
func BenchmarkClusteringApproxSpeedup(b *testing.B) {
	pc := cityFrame(b)
	params := cluster.DefaultParams(benchkit.DefaultQ)
	b.Run("Exact", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			cluster.CellBased(pc, params)
		}
	})
	b.Run("Approximate", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			cluster.Approximate(pc, params)
		}
	})
}

// BenchmarkThroughput measures §4.4's sustained compression rate; the
// sensor produces 10 frames/s, so ns/op below 1e8 means real-time.
func BenchmarkThroughput(b *testing.B) {
	pc := cityFrame(b)
	opts := dbgc.DefaultOptions(benchkit.DefaultQ)
	var mbps float64
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		data, _, err := dbgc.Compress(pc, opts)
		if err != nil {
			b.Fatal(err)
		}
		mbps = benchkit.BandwidthMbps(len(data), 10)
	}
	b.ReportMetric(mbps, "Mbps@10fps")
}

// BenchmarkTemporalPFrame measures the stream extension: encoding one
// P-frame of a static capture against the previous decoded frame.
func BenchmarkTemporalPFrame(b *testing.B) {
	res, err := benchkit.Temporal(lidar.Campus, 2, benchkit.DefaultQ)
	if err != nil {
		b.Fatal(err)
	}
	_ = res
	b.ReportMetric(res.Gain, "temporal-gain")
	b.ReportAllocs()
	// The heavy path is re-running the two-frame experiment.
	for i := 0; i < b.N; i++ {
		if _, err := benchkit.Temporal(lidar.Campus, 2, benchkit.DefaultQ); err != nil {
			b.Fatal(err)
		}
	}
}
