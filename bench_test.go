// Benchmarks, one per table and figure of the paper's evaluation (§4).
// Each benchmark drives the same code path the corresponding experiment in
// cmd/dbgc-bench measures, and reports the experiment's headline quantity
// via b.ReportMetric so `go test -bench` output carries the reproduced
// numbers. Full sweeps (all scenes × all error bounds) live in
// cmd/dbgc-bench; benchmarks run one representative configuration each.
package dbgc_test

import (
	"testing"

	"dbgc"
	"dbgc/internal/benchkit"
	"dbgc/internal/cluster"
	"dbgc/internal/core"
	"dbgc/internal/lidar"
	"dbgc/internal/octree"
)

func cityFrame(b *testing.B) dbgc.PointCloud {
	b.Helper()
	pc, err := benchkit.Frame(lidar.City, 1)
	if err != nil {
		b.Fatal(err)
	}
	return pc
}

// BenchmarkFig3OctreeVsRadius measures Figure 3: octree compression of the
// 20 m concentric subset, the radius at which the paper reports ratio ~22
// and density ~2 points/m³.
func BenchmarkFig3OctreeVsRadius(b *testing.B) {
	pc := cityFrame(b)
	var sub dbgc.PointCloud
	for _, p := range pc {
		if p.Norm() <= 20 {
			sub = append(sub, p)
		}
	}
	b.ReportAllocs()
	b.ResetTimer()
	var ratio float64
	for i := 0; i < b.N; i++ {
		enc, err := octree.Encode(sub, benchkit.DefaultQ)
		if err != nil {
			b.Fatal(err)
		}
		ratio = benchkit.Ratio(len(sub), len(enc.Data))
	}
	b.ReportMetric(ratio, "ratio")
}

// BenchmarkFig9RatioVsErrorBound measures Figure 9's headline cell: DBGC
// on the city scene at the 2 cm bound.
func BenchmarkFig9RatioVsErrorBound(b *testing.B) {
	pc := cityFrame(b)
	b.ReportAllocs()
	b.ResetTimer()
	var ratio float64
	for i := 0; i < b.N; i++ {
		data, stats, err := dbgc.Compress(pc, dbgc.DefaultOptions(benchkit.DefaultQ))
		if err != nil {
			b.Fatal(err)
		}
		_ = data
		ratio = stats.CompressionRatio()
	}
	b.ReportMetric(ratio, "ratio")
}

// BenchmarkFig9Baselines covers the baseline codecs of Figure 9 at 2 cm.
func BenchmarkFig9Baselines(b *testing.B) {
	pc := cityFrame(b)
	for _, codec := range dbgc.Codecs() {
		codec := codec
		b.Run(codec.Name(), func(b *testing.B) {
			b.ReportAllocs()
			var ratio float64
			for i := 0; i < b.N; i++ {
				data, err := codec.Compress(pc, benchkit.DefaultQ)
				if err != nil {
					b.Fatal(err)
				}
				ratio = benchkit.Ratio(len(pc), len(data))
			}
			b.ReportMetric(ratio, "ratio")
		})
	}
}

// BenchmarkFig10OctreeFraction measures Figure 10's 50% manual-split
// point.
func BenchmarkFig10OctreeFraction(b *testing.B) {
	pc := cityFrame(b)
	opts := dbgc.DefaultOptions(benchkit.DefaultQ)
	opts.ForceOctreeFraction = 0.5
	b.ResetTimer()
	var ratio float64
	for i := 0; i < b.N; i++ {
		data, _, err := dbgc.Compress(pc, opts)
		if err != nil {
			b.Fatal(err)
		}
		ratio = benchkit.Ratio(len(pc), len(data))
	}
	b.ReportMetric(ratio, "ratio")
}

// BenchmarkFig11Ablations covers the ablations of Figure 11 on the campus
// scene at 2 cm.
func BenchmarkFig11Ablations(b *testing.B) {
	pc, err := benchkit.Frame(lidar.Campus, 1)
	if err != nil {
		b.Fatal(err)
	}
	variants := map[string]func(*dbgc.Options){
		"Full":        func(o *dbgc.Options) {},
		"-Radial":     func(o *dbgc.Options) { o.DisableRadialOpt = true },
		"-Group":      func(o *dbgc.Options) { o.Groups = 1 },
		"-Conversion": func(o *dbgc.Options) { o.CartesianPolylines = true },
	}
	for name, mod := range variants {
		mod := mod
		b.Run(name, func(b *testing.B) {
			opts := dbgc.DefaultOptions(benchkit.DefaultQ)
			mod(&opts)
			var ratio float64
			for i := 0; i < b.N; i++ {
				data, _, err := dbgc.Compress(pc, opts)
				if err != nil {
					b.Fatal(err)
				}
				ratio = benchkit.Ratio(len(pc), len(data))
			}
			b.ReportMetric(ratio, "ratio")
		})
	}
}

// BenchmarkTable2Outliers covers Table 2's outlier-handling modes on the
// campus scene.
func BenchmarkTable2Outliers(b *testing.B) {
	pc, err := benchkit.Frame(lidar.Campus, 1)
	if err != nil {
		b.Fatal(err)
	}
	modes := map[string]core.OutlierMode{
		"Outlier": core.OutlierQuadtree,
		"Octree":  core.OutlierOctree,
		"None":    core.OutlierNone,
	}
	for name, mode := range modes {
		mode := mode
		b.Run(name, func(b *testing.B) {
			opts := dbgc.DefaultOptions(benchkit.DefaultQ)
			opts.OutlierMode = mode
			var ratio float64
			for i := 0; i < b.N; i++ {
				data, _, err := dbgc.Compress(pc, opts)
				if err != nil {
					b.Fatal(err)
				}
				ratio = benchkit.Ratio(len(pc), len(data))
			}
			b.ReportMetric(ratio, "ratio")
		})
	}
}

// BenchmarkFig12Latency measures Figure 12: compression and decompression
// latency of DBGC on the city scene at 2 cm.
func BenchmarkFig12Latency(b *testing.B) {
	pc := cityFrame(b)
	b.Run("Compress", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, _, err := dbgc.Compress(pc, dbgc.DefaultOptions(benchkit.DefaultQ)); err != nil {
				b.Fatal(err)
			}
		}
	})
	data, _, err := dbgc.Compress(pc, dbgc.DefaultOptions(benchkit.DefaultQ))
	if err != nil {
		b.Fatal(err)
	}
	b.Run("Decompress", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, err := dbgc.Decompress(data); err != nil {
				b.Fatal(err)
			}
		}
	})
}

// BenchmarkFig13Breakdown exercises the staged pipeline that Figure 13
// decomposes; stage shares are printed by `dbgc-bench -exp fig13`.
func BenchmarkFig13Breakdown(b *testing.B) {
	pc := cityFrame(b)
	var spaShare float64
	for i := 0; i < b.N; i++ {
		_, stats, err := dbgc.Compress(pc, dbgc.DefaultOptions(benchkit.DefaultQ))
		if err != nil {
			b.Fatal(err)
		}
		total := stats.DEN + stats.OCT + stats.COR + stats.ORG + stats.SPA + stats.OUT
		if total > 0 {
			spaShare = float64(stats.SPA) / float64(total)
		}
	}
	b.ReportMetric(spaShare*100, "SPA-%")
}

// BenchmarkClusteringApproxSpeedup compares the exact and approximate
// clustering of §4.3.
func BenchmarkClusteringApproxSpeedup(b *testing.B) {
	pc := cityFrame(b)
	params := cluster.DefaultParams(benchkit.DefaultQ)
	b.Run("Exact", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			cluster.CellBased(pc, params)
		}
	})
	b.Run("Approximate", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			cluster.Approximate(pc, params)
		}
	})
}

// BenchmarkThroughput measures §4.4's sustained compression rate; the
// sensor produces 10 frames/s, so ns/op below 1e8 means real-time.
func BenchmarkThroughput(b *testing.B) {
	pc := cityFrame(b)
	opts := dbgc.DefaultOptions(benchkit.DefaultQ)
	var mbps float64
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		data, _, err := dbgc.Compress(pc, opts)
		if err != nil {
			b.Fatal(err)
		}
		mbps = benchkit.BandwidthMbps(len(data), 10)
	}
	b.ReportMetric(mbps, "Mbps@10fps")
}

// BenchmarkTemporalPFrame measures the stream extension: encoding one
// P-frame of a static capture against the previous decoded frame.
func BenchmarkTemporalPFrame(b *testing.B) {
	res, err := benchkit.Temporal(lidar.Campus, 2, benchkit.DefaultQ)
	if err != nil {
		b.Fatal(err)
	}
	_ = res
	b.ReportMetric(res.Gain, "temporal-gain")
	// The heavy path is re-running the two-frame experiment.
	for i := 0; i < b.N; i++ {
		if _, err := benchkit.Temporal(lidar.Campus, 2, benchkit.DefaultQ); err != nil {
			b.Fatal(err)
		}
	}
}
